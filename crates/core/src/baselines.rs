//! Baseline schedulers the paper compares IBIS against.
//!
//! * [`Fifo`] — native Hadoop: the datanode performs no I/O management;
//!   requests go to storage "as soon as they come without any control"
//!   (§7.2).
//! * [`CgroupWeight`] / [`CgroupThrottle`] — the cgroups-based extension of
//!   YARN evaluated in §7.4. The crucial limitation is modelled exactly:
//!   containers can only differentiate the I/Os a task issues *directly to
//!   the local file system* (intermediate I/O). HDFS and shuffle I/O are
//!   serviced by the shared Data Node / Node Manager daemons, which live in
//!   one cgroup — so those requests all collapse into a single undifferen-
//!   tiated "daemon" flow (weight mode) or bypass throttling entirely
//!   (throttle mode).

use crate::request::{AppId, IoClass, IoKind, Request};
use crate::scheduler::{IoScheduler, SchedStats};
use crate::sfq::{SfqConfig, SfqD};
use ibis_simcore::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Native Hadoop: pass-through FIFO with unbounded dispatch.
#[derive(Debug, Default)]
pub struct Fifo {
    queue: VecDeque<Request>,
    outstanding: usize,
    stats: SchedStats,
}

impl Fifo {
    /// Creates a pass-through scheduler.
    pub fn new() -> Self {
        Fifo::default()
    }
}

impl IoScheduler for Fifo {
    fn set_weight(&mut self, _app: AppId, _weight: f64) {
        // Native Hadoop has no notion of I/O weights.
    }

    fn submit(&mut self, req: Request, _now: SimTime) {
        self.stats.submitted += 1;
        self.queue.push_back(req);
    }

    fn pop_dispatch(&mut self, _now: SimTime) -> Option<Request> {
        let req = self.queue.pop_front()?;
        self.outstanding += 1;
        self.stats.dispatched += 1;
        Some(req)
    }

    fn on_complete(
        &mut self,
        app: AppId,
        _kind: IoKind,
        bytes: u64,
        _latency: SimDuration,
        _now: SimTime,
    ) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.stats.completed += 1;
        self.stats.service.add(app, bytes);
    }

    fn on_tick(&mut self, _now: SimTime) {}

    fn tick_period(&self) -> Option<SimDuration> {
        None
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn outstanding(&self) -> usize {
        self.outstanding
    }

    fn drain_service_report(&mut self) -> Vec<(AppId, u64)> {
        Vec::new()
    }

    fn apply_global_service(&mut self, _totals: &[(AppId, u64)], _now: SimTime) {}

    fn stats(&self) -> &SchedStats {
        &self.stats
    }
}

/// Dispatch depth used by the cgroup-weight emulation: blkio proportional
/// sharing runs below a CFQ-style dispatcher with bounded device queue; we
/// give it the same default depth as static SFQ(D) so the comparison in
/// Fig. 10 isolates *what* is differentiated, not *how deep* the queue is.
const CGROUP_DEPTH: u32 = 8;

/// The synthetic flow all daemon-serviced I/O (persistent + shuffle)
/// collapses into under cgroups.
const DAEMON_FLOW: AppId = AppId(u32::MAX);

/// cgroups blkio proportional-weight emulation. Intermediate I/O is
/// differentiated per application; persistent and shuffle I/O all share the
/// single daemon flow.
pub struct CgroupWeight {
    inner: SfqD,
    /// Dispatched-but-uncompleted request ids → real application, so the
    /// caller always sees real ids even though the inner scheduler works on
    /// remapped flows.
    in_flight_class: HashMap<u64, AppId>,
    stats: SchedStats,
}

impl Default for CgroupWeight {
    fn default() -> Self {
        Self::new()
    }
}

impl CgroupWeight {
    /// Creates the scheduler with the daemon flow at weight 1.
    pub fn new() -> Self {
        let mut inner = SfqD::new(SfqConfig {
            depth: CGROUP_DEPTH,
            delay_cap: None,
        });
        inner.set_weight(DAEMON_FLOW, 1.0);
        CgroupWeight {
            inner,
            in_flight_class: HashMap::new(),
            stats: SchedStats::default(),
        }
    }

    fn flow_of(req: &Request) -> AppId {
        match req.class {
            IoClass::Intermediate => req.app,
            IoClass::Persistent | IoClass::Shuffle => DAEMON_FLOW,
        }
    }
}

impl IoScheduler for CgroupWeight {
    fn set_weight(&mut self, app: AppId, weight: f64) {
        // The weight applies to the app's container (its direct local-FS
        // I/O); the daemon flow keeps its own weight.
        self.inner.set_weight(app, weight);
    }

    fn submit(&mut self, req: Request, now: SimTime) {
        self.stats.submitted += 1;
        let flow = Self::flow_of(&req);
        let mut remapped = req;
        remapped.app = flow;
        self.in_flight_class.insert(req.id, req.app);
        self.inner.submit(remapped, now);
    }

    fn pop_dispatch(&mut self, now: SimTime) -> Option<Request> {
        let mut req = self.inner.pop_dispatch(now)?;
        self.stats.dispatched += 1;
        // Restore the real application id for the engine; the mapping is
        // no longer needed after dispatch.
        if let Some(real) = self.in_flight_class.remove(&req.id) {
            req.app = real;
        }
        Some(req)
    }

    fn on_complete(
        &mut self,
        app: AppId,
        kind: IoKind,
        bytes: u64,
        latency: SimDuration,
        now: SimTime,
    ) {
        self.stats.completed += 1;
        self.stats.service.add(app, bytes);
        // The inner scheduler only needs the slot freed; its per-flow
        // service bookkeeping is unused (cgroups do not coordinate).
        self.inner.on_complete(DAEMON_FLOW, kind, bytes, latency, now);
    }

    fn on_tick(&mut self, _now: SimTime) {}

    fn tick_period(&self) -> Option<SimDuration> {
        None
    }

    fn queued(&self) -> usize {
        self.inner.queued()
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding()
    }

    fn drain_service_report(&mut self) -> Vec<(AppId, u64)> {
        Vec::new()
    }

    fn apply_global_service(&mut self, _totals: &[(AppId, u64)], _now: SimTime) {}

    fn stats(&self) -> &SchedStats {
        &self.stats
    }

    fn current_depth(&self) -> Option<u32> {
        Some(CGROUP_DEPTH)
    }
}

/// Fraction of a capped application's intermediate-read bytes that
/// actually reach the block layer (page-cache miss rate); the rest escape
/// the throttle.
const CHARGED_READ_FRACTION: f64 = 0.3;

/// Token bucket for the throttle mode.
#[derive(Debug, Clone)]
struct Bucket {
    rate: f64,
    tokens: f64,
    burst: f64,
    last_refill: SimTime,
}

impl Bucket {
    fn new(rate: f64) -> Self {
        // The bucket must hold at least one full chunk or large requests
        // could never dispatch; 8 MiB covers the workspace's 4 MiB chunks.
        let burst = rate.max((8 * 1024 * 1024) as f64);
        Bucket {
            rate,
            tokens: burst,
            burst,
            last_refill: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + self.rate * dt).min(self.burst);
    }
}

/// cgroups blkio throttling emulation: per-application byte/sec caps on
/// intermediate I/O. Not work-conserving — a capped application leaves the
/// device idle rather than exceed its cap, which is exactly the
/// underutilisation §7.4 observes.
///
/// Escape semantics of blkio-v1 throttling on the paper's 3.2-era kernel
/// are modelled: buffered *writes* are attributed to the flusher, not the
/// issuing container, so they escape the cap entirely; reads are charged
/// only when they miss the page cache (intermediate data is usually
/// recently written, so most merge reads hit). `CHARGED_READ_FRACTION`
/// sets the modelled miss rate.
pub struct CgroupThrottle {
    /// Uncapped traffic (persistent/shuffle + apps without caps): native
    /// pass-through.
    main: VecDeque<Request>,
    /// Per capped app: its intermediate-I/O queue (BTreeMap for
    /// deterministic scan order).
    throttled: BTreeMap<AppId, VecDeque<Request>>,
    buckets: HashMap<AppId, Bucket>,
    outstanding: usize,
    stats: SchedStats,
}

impl Default for CgroupThrottle {
    fn default() -> Self {
        Self::new()
    }
}

impl CgroupThrottle {
    /// Creates a throttle scheduler with no caps (pure pass-through until
    /// [`CgroupThrottle::set_cap`] is called).
    pub fn new() -> Self {
        CgroupThrottle {
            main: VecDeque::new(),
            throttled: BTreeMap::new(),
            buckets: HashMap::new(),
            outstanding: 0,
            stats: SchedStats::default(),
        }
    }

    /// Caps `app`'s intermediate I/O at `bytes_per_sec`.
    pub fn set_cap(&mut self, app: AppId, bytes_per_sec: f64) {
        assert!(bytes_per_sec > 0.0, "cap must be positive");
        self.buckets.insert(app, Bucket::new(bytes_per_sec));
        self.throttled.entry(app).or_default();
    }

    fn is_throttled(&self, req: &Request) -> bool {
        req.class == IoClass::Intermediate
            && req.kind == IoKind::Read
            && self.buckets.contains_key(&req.app)
    }

    /// Token cost of a throttled request (the cache-miss share of its
    /// bytes).
    fn charge(req: &Request) -> f64 {
        req.bytes as f64 * CHARGED_READ_FRACTION
    }
}

impl IoScheduler for CgroupThrottle {
    fn set_weight(&mut self, _app: AppId, _weight: f64) {
        // Throttle mode uses absolute caps, not weights.
    }

    fn submit(&mut self, req: Request, _now: SimTime) {
        self.stats.submitted += 1;
        if self.is_throttled(&req) {
            self.throttled.get_mut(&req.app).expect("cap exists").push_back(req);
        } else {
            self.main.push_back(req);
        }
    }

    fn pop_dispatch(&mut self, now: SimTime) -> Option<Request> {
        if let Some(req) = self.main.pop_front() {
            self.outstanding += 1;
            self.stats.dispatched += 1;
            return Some(req);
        }
        for (app, queue) in self.throttled.iter_mut() {
            let Some(head) = queue.front() else { continue };
            let bucket = self.buckets.get_mut(app).expect("cap exists");
            bucket.refill(now);
            let cost = Self::charge(head);
            if bucket.tokens >= cost {
                bucket.tokens -= cost;
                let req = queue.pop_front().expect("head exists");
                self.outstanding += 1;
                self.stats.dispatched += 1;
                return Some(req);
            }
        }
        None
    }

    fn on_complete(
        &mut self,
        app: AppId,
        _kind: IoKind,
        bytes: u64,
        _latency: SimDuration,
        _now: SimTime,
    ) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.stats.completed += 1;
        self.stats.service.add(app, bytes);
    }

    fn on_tick(&mut self, _now: SimTime) {
        // Nothing to do: the engine re-pumps pop_dispatch after every tick,
        // which is when newly accrued tokens admit waiting requests.
    }

    fn tick_period(&self) -> Option<SimDuration> {
        // Token-refill granularity: how long a throttled request may wait
        // past its token-availability instant.
        Some(SimDuration::from_millis(100))
    }

    fn queued(&self) -> usize {
        self.main.len() + self.throttled.values().map(VecDeque::len).sum::<usize>()
    }

    fn outstanding(&self) -> usize {
        self.outstanding
    }

    fn drain_service_report(&mut self) -> Vec<(AppId, u64)> {
        Vec::new()
    }

    fn apply_global_service(&mut self, _totals: &[(AppId, u64)], _now: SimTime) {}

    fn stats(&self) -> &SchedStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AppId = AppId(1);
    const B: AppId = AppId(2);

    fn persistent(id: u64, app: AppId, bytes: u64) -> Request {
        Request::new(id, app, IoKind::Read, bytes)
    }

    fn intermediate(id: u64, app: AppId, bytes: u64) -> Request {
        Request::new(id, app, IoKind::Write, bytes).with_class(IoClass::Intermediate)
    }

    fn intermediate_read(id: u64, app: AppId, bytes: u64) -> Request {
        Request::new(id, app, IoKind::Read, bytes).with_class(IoClass::Intermediate)
    }

    mod fifo {
        use super::*;

        #[test]
        fn passes_through_in_order_unbounded() {
            let mut s = Fifo::new();
            for i in 0..100 {
                s.submit(persistent(i, A, 10), SimTime::ZERO);
            }
            let mut got = Vec::new();
            while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
                got.push(r.id);
            }
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert_eq!(s.outstanding(), 100); // no depth bound
        }

        #[test]
        fn ignores_weights_entirely() {
            let mut s = Fifo::new();
            s.set_weight(A, 32.0);
            s.submit(persistent(0, B, 10), SimTime::ZERO);
            s.submit(persistent(1, A, 10), SimTime::ZERO);
            assert_eq!(s.pop_dispatch(SimTime::ZERO).unwrap().app, B);
        }

        #[test]
        fn stats_count_service() {
            let mut s = Fifo::new();
            s.submit(persistent(0, A, 10), SimTime::ZERO);
            let r = s.pop_dispatch(SimTime::ZERO).unwrap();
            s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
            assert_eq!(s.stats().service.get(A), Some(10));
            assert_eq!(s.outstanding(), 0);
        }
    }

    mod cg_weight {
        use super::*;

        fn drain(s: &mut CgroupWeight) -> Vec<(u64, AppId)> {
            let mut order = Vec::new();
            loop {
                while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
                    order.push((r.id, r.app));
                    s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
                }
                if s.queued() == 0 {
                    break;
                }
            }
            order
        }

        #[test]
        fn differentiates_intermediate_io() {
            let mut s = CgroupWeight::new();
            s.set_weight(A, 100.0);
            s.set_weight(B, 1.0);
            for i in 0..10 {
                s.submit(intermediate(i, B, 100), SimTime::ZERO);
            }
            for i in 100..110 {
                s.submit(intermediate(i, A, 100), SimTime::ZERO);
            }
            let order = drain(&mut s);
            // With 100:1 weights, A's 10 requests should overtake most of
            // B's backlog (B keeps only its head start of CGROUP_DEPTH).
            let a_pos: Vec<usize> = order
                .iter()
                .enumerate()
                .filter(|(_, (_, app))| *app == A)
                .map(|(i, _)| i)
                .collect();
            assert!(
                *a_pos.last().unwrap() < 19,
                "A not prioritised: {order:?}"
            );
        }

        #[test]
        fn cannot_differentiate_persistent_io() {
            // The paper's key point: HDFS I/O all flows through the daemon
            // cgroup, so 100:1 weights have no effect — order stays FIFO.
            let mut s = CgroupWeight::new();
            s.set_weight(A, 100.0);
            s.set_weight(B, 1.0);
            for i in 0..8 {
                s.submit(persistent(i, B, 100), SimTime::ZERO);
            }
            for i in 100..108 {
                s.submit(persistent(i, A, 100), SimTime::ZERO);
            }
            let order = drain(&mut s);
            let ids: Vec<u64> = order.iter().map(|&(id, _)| id).collect();
            assert_eq!(
                ids,
                (0..8).chain(100..108).collect::<Vec<_>>(),
                "daemon-flow I/O should stay FIFO"
            );
        }

        #[test]
        fn real_app_ids_restored_on_dispatch() {
            let mut s = CgroupWeight::new();
            s.submit(persistent(1, A, 100), SimTime::ZERO);
            let r = s.pop_dispatch(SimTime::ZERO).unwrap();
            assert_eq!(r.app, A, "engine must see the real app id");
        }

        #[test]
        fn service_attributed_to_real_apps() {
            let mut s = CgroupWeight::new();
            s.submit(persistent(1, A, 100), SimTime::ZERO);
            s.submit(intermediate(2, B, 200), SimTime::ZERO);
            while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
                s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
            }
            assert_eq!(s.stats().service.get(A), Some(100));
            assert_eq!(s.stats().service.get(B), Some(200));
        }
    }

    mod cg_throttle {
        use super::*;

        #[test]
        fn uncapped_traffic_passes_through() {
            let mut s = CgroupThrottle::new();
            s.set_cap(B, 1e6);
            for i in 0..5 {
                s.submit(persistent(i, B, 4 << 20), SimTime::ZERO);
            }
            let mut n = 0;
            while s.pop_dispatch(SimTime::ZERO).is_some() {
                n += 1;
            }
            assert_eq!(n, 5, "persistent I/O must bypass the throttle");
        }

        #[test]
        fn capped_intermediate_reads_respect_rate() {
            let mut s = CgroupThrottle::new();
            s.set_cap(B, 1e6); // 1 MB/s
            let chunk: u64 = 4 << 20; // 4 MiB, charged at 10 % = ~0.42 MB
            for i in 0..40 {
                s.submit(intermediate_read(i, B, chunk), SimTime::ZERO);
            }
            // Initial burst of 8 MB of tokens admits ~19 charged chunks.
            let mut burst = 0;
            while s.pop_dispatch(SimTime::ZERO).is_some() {
                burst += 1;
            }
            let expected = (8e6 / (chunk as f64 * CHARGED_READ_FRACTION)) as i32;
            assert!(
                (burst - expected).abs() <= 1,
                "burst {burst}, expected ~{expected}"
            );
            // Tokens then accrue at 1 MB/s: ~2.4 more chunks after 1 s.
            let mut later = 0;
            while s.pop_dispatch(SimTime::from_secs(1)).is_some() {
                later += 1;
            }
            assert!((1..=3).contains(&later), "later {later}");
        }

        #[test]
        fn buffered_writes_escape_the_throttle() {
            // blkio-v1 cannot attribute buffered writeback: intermediate
            // writes pass through uncapped.
            let mut s = CgroupThrottle::new();
            s.set_cap(B, 1.0); // essentially frozen
            for i in 0..10 {
                s.submit(intermediate(i, B, 8 << 20), SimTime::ZERO);
            }
            let mut n = 0;
            while s.pop_dispatch(SimTime::ZERO).is_some() {
                n += 1;
            }
            assert_eq!(n, 10, "writes must escape the cap");
        }

        #[test]
        fn not_work_conserving() {
            // Device idle, tokens empty → nothing dispatches even though
            // requests wait: the underutilisation the paper criticises.
            let mut s = CgroupThrottle::new();
            s.set_cap(B, 1.0); // ~no refill
            for i in 0..30 {
                s.submit(intermediate_read(i, B, 8 << 20), SimTime::ZERO);
            }
            while s.pop_dispatch(SimTime::ZERO).is_some() {}
            assert!(s.queued() > 0, "queue should be throttled, not drained");
            assert!(s.pop_dispatch(SimTime::from_secs(1)).is_none());
        }

        #[test]
        fn other_apps_unaffected_by_caps() {
            let mut s = CgroupThrottle::new();
            s.set_cap(B, 1.0); // essentially frozen
            // Exhaust B's burst so its next read really is blocked.
            for i in 0..30 {
                s.submit(intermediate_read(i, B, 8 << 20), SimTime::ZERO);
            }
            while s.pop_dispatch(SimTime::ZERO).is_some() {}
            s.submit(intermediate_read(100, B, 4 << 20), SimTime::ZERO);
            s.submit(intermediate_read(101, A, 4 << 20), SimTime::ZERO);
            let r = s.pop_dispatch(SimTime::ZERO).unwrap();
            assert_eq!(r.app, A, "uncapped app must not wait behind capped");
        }

        #[test]
        fn tick_period_present_for_token_refill() {
            let s = CgroupThrottle::new();
            assert!(s.tick_period().is_some());
        }
    }
}
