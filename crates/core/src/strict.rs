//! Non-work-conserving strict partitioning — the extreme point of the
//! fairness/utilisation trade-off the paper's §9 sketches: *"in the
//! extreme case, a non-work-conserving scheduler can provide strict
//! performance isolation but may severely underutilize the storage."*
//!
//! [`StrictPartition`] divides the dispatch depth `D` into per-flow quotas
//! proportional to the flows' weights. A flow can never occupy more than
//! its quota of device slots — even when every other flow is idle — so a
//! flow's service is completely independent of the others' load (strict
//! isolation), at the cost of idle device slots whenever demand is
//! unbalanced (the underutilisation §9 predicts). The `ablate`-style
//! comparison against SFQ(D2) in the isolation experiments quantifies
//! exactly that trade-off.

use crate::request::{AppId, IoKind, Request};
use crate::scheduler::{IoScheduler, SchedStats};
use ibis_simcore::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Per-flow state: FIFO backlog plus the quota bookkeeping.
#[derive(Debug, Default)]
struct Flow {
    weight: f64,
    queue: VecDeque<Request>,
    outstanding: u32,
}

/// The strict partitioning scheduler. See the module docs.
pub struct StrictPartition {
    depth: u32,
    flows: BTreeMap<AppId, Flow>,
    stats: SchedStats,
    /// Round-robin cursor for scanning eligible flows deterministically.
    cursor: u32,
}

impl StrictPartition {
    /// Creates a scheduler that partitions `depth` device slots.
    pub fn new(depth: u32) -> Self {
        assert!(depth >= 1);
        StrictPartition {
            depth,
            flows: BTreeMap::new(),
            stats: SchedStats::default(),
            cursor: 0,
        }
    }

    /// A flow's slot quota: its weight share of the depth, at least 1.
    fn quota(&self, app: AppId) -> u32 {
        let total: f64 = self.flows.values().map(|f| f.weight).sum();
        let w = self.flows.get(&app).map_or(1.0, |f| f.weight);
        if total <= 0.0 {
            return 1;
        }
        ((self.depth as f64 * w / total).floor() as u32).max(1)
    }
}

impl IoScheduler for StrictPartition {
    fn set_weight(&mut self, app: AppId, weight: f64) {
        assert!(weight > 0.0);
        self.flows.entry(app).or_default().weight = weight;
    }

    fn submit(&mut self, req: Request, _now: SimTime) {
        self.stats.submitted += 1;
        let flow = self.flows.entry(req.app).or_insert_with(|| Flow {
            weight: 1.0,
            ..Flow::default()
        });
        flow.queue.push_back(req);
    }

    fn pop_dispatch(&mut self, _now: SimTime) -> Option<Request> {
        // Deterministic round-robin over flows with backlog and quota room.
        let apps: Vec<AppId> = self.flows.keys().copied().collect();
        if apps.is_empty() {
            return None;
        }
        for i in 0..apps.len() {
            let app = apps[(self.cursor as usize + i) % apps.len()];
            let quota = self.quota(app);
            let flow = self.flows.get_mut(&app).expect("flow exists");
            if flow.outstanding < quota {
                if let Some(req) = flow.queue.pop_front() {
                    flow.outstanding += 1;
                    self.cursor = ((self.cursor as usize + i + 1) % apps.len()) as u32;
                    self.stats.dispatched += 1;
                    self.stats.decisions += 1;
                    return Some(req);
                }
            }
        }
        None
    }

    fn on_complete(
        &mut self,
        app: AppId,
        _kind: IoKind,
        bytes: u64,
        _latency: SimDuration,
        _now: SimTime,
    ) {
        self.stats.completed += 1;
        self.stats.service.add(app, bytes);
        if let Some(flow) = self.flows.get_mut(&app) {
            flow.outstanding = flow.outstanding.saturating_sub(1);
        }
    }

    fn on_tick(&mut self, _now: SimTime) {}

    fn tick_period(&self) -> Option<SimDuration> {
        None
    }

    fn queued(&self) -> usize {
        self.flows.values().map(|f| f.queue.len()).sum()
    }

    fn outstanding(&self) -> usize {
        self.flows.values().map(|f| f.outstanding as usize).sum()
    }

    fn drain_service_report(&mut self) -> Vec<(AppId, u64)> {
        Vec::new()
    }

    fn apply_global_service(&mut self, _totals: &[(AppId, u64)], _now: SimTime) {}

    fn stats(&self) -> &SchedStats {
        &self.stats
    }

    fn current_depth(&self) -> Option<u32> {
        Some(self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AppId = AppId(1);
    const B: AppId = AppId(2);

    fn req(id: u64, app: AppId) -> Request {
        Request::new(id, app, IoKind::Read, 1 << 20)
    }

    #[test]
    fn single_flow_capped_at_quota_even_when_device_idle() {
        // The defining non-work-conserving behaviour: with two registered
        // flows at equal weights and D = 8, a lone backlogged flow gets
        // only its quota of 4 slots.
        let mut s = StrictPartition::new(8);
        s.set_weight(A, 1.0);
        s.set_weight(B, 1.0);
        for i in 0..20 {
            s.submit(req(i, A), SimTime::ZERO);
        }
        let mut got = 0;
        while s.pop_dispatch(SimTime::ZERO).is_some() {
            got += 1;
        }
        assert_eq!(got, 4, "quota must cap a lone flow (underutilisation)");
    }

    #[test]
    fn quotas_follow_weights() {
        let mut s = StrictPartition::new(12);
        s.set_weight(A, 3.0);
        s.set_weight(B, 1.0);
        for i in 0..40 {
            s.submit(req(i, A), SimTime::ZERO);
            s.submit(req(100 + i, B), SimTime::ZERO);
        }
        let mut per_app = [0u32; 3];
        while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
            per_app[r.app.0 as usize] += 1;
        }
        assert_eq!(per_app[1], 9, "A gets 3/4 of 12");
        assert_eq!(per_app[2], 3, "B gets 1/4 of 12");
    }

    #[test]
    fn isolation_is_strict() {
        // B's dispatch capacity is identical whether A is idle or flooding.
        let capacity_of_b = |a_backlog: u64| {
            let mut s = StrictPartition::new(8);
            s.set_weight(A, 1.0);
            s.set_weight(B, 1.0);
            for i in 0..a_backlog {
                s.submit(req(i, A), SimTime::ZERO);
            }
            for i in 0..20 {
                s.submit(req(1000 + i, B), SimTime::ZERO);
            }
            let mut b = 0;
            while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
                if r.app == B {
                    b += 1;
                }
            }
            b
        };
        assert_eq!(capacity_of_b(0), capacity_of_b(1000));
    }

    #[test]
    fn completions_recycle_quota() {
        let mut s = StrictPartition::new(4);
        s.set_weight(A, 1.0);
        for i in 0..8 {
            s.submit(req(i, A), SimTime::ZERO);
        }
        let mut first = Vec::new();
        while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
            first.push(r);
        }
        assert_eq!(first.len(), 4);
        s.on_complete(A, IoKind::Read, 1 << 20, SimDuration::ZERO, SimTime::ZERO);
        assert!(s.pop_dispatch(SimTime::ZERO).is_some());
        assert!(s.pop_dispatch(SimTime::ZERO).is_none());
    }

    #[test]
    fn every_flow_keeps_a_minimum_slot() {
        // Even a tiny weight always yields quota ≥ 1.
        let mut s = StrictPartition::new(2);
        s.set_weight(A, 1000.0);
        s.set_weight(B, 0.001);
        s.submit(req(0, B), SimTime::ZERO);
        assert!(s.pop_dispatch(SimTime::ZERO).is_some());
    }
}
