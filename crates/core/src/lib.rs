//! # ibis-core — the IBIS schedulers and distributed coordination
//!
//! This crate is the paper's contribution, implemented from §3–§6:
//!
//! * [`request`] — the interposed request vocabulary: every I/O in the
//!   big-data system is tagged with its application id, I/O service weight,
//!   direction, and *class* (persistent / intermediate / shuffle), exactly
//!   the information the IBIS interposition layer attaches in Hadoop.
//! * [`sfq`] — **SFQ(D)**: start-time fair queuing with a bounded number of
//!   outstanding requests (Jin et al., SIGMETRICS'04), extended with the
//!   DSFQ total-service delay rule (Wang & Merchant, FAST'07) used by the
//!   distributed coordination of §5.
//! * [`controller`] — the integral feedback controller of §4 that turns
//!   SFQ(D) into **SFQ(D2)** by steering the observed I/O latency toward a
//!   profiled reference latency: `D(k+1) = D(k) + K · (L_ref − L(k))`.
//! * [`sfqd2`] — the composition of the two, plus the depth trace used to
//!   reproduce Fig. 7.
//! * [`baselines`] — native FIFO (no I/O management) and the cgroups
//!   blkio-style weight/throttle schedulers YARN could be extended with
//!   (§7.4), which can only differentiate *intermediate* I/Os.
//! * [`strict`] — the §9 extreme point: a non-work-conserving strict
//!   partitioner (perfect isolation, deliberate underutilisation).
//! * [`broker`] — the centralized Scheduling Broker of §5 that aggregates
//!   per-application service vectors from every datanode scheduler and
//!   returns global totals.
//! * [`scheduler`] — the common [`scheduler::IoScheduler`] trait the
//!   cluster engine drives, and the [`scheduler::Policy`] factory that
//!   builds any of the above.
//!
//! The schedulers are deliberately *passive* and engine-agnostic: they
//! never block, never own a clock, and interact purely through
//! `submit` / `pop_dispatch` / `on_complete` / `on_tick`, so they can be
//! embedded in the discrete-event cluster simulator, a benchmark loop, or
//! a real I/O proxy.
//!
//! Two support modules serve the engine's allocation-lean hot path (see
//! DESIGN.md §12): [`slab`] — typed generational arenas replacing the
//! engine's `HashMap` side tables — and [`intern`] — per-run string
//! interning so event paths carry `Copy` symbols instead of clones. A
//! third, [`env`], is the single parser for the `IBIS_JOBS` /
//! `IBIS_PARTITIONS` worker-count knobs and the [`WorkerBudget`] split
//! between sweep-level and run-level parallelism (DESIGN.md §14).

#![warn(missing_docs)]

pub mod baselines;
pub mod broker;
pub mod controller;
pub mod env;
pub mod intern;
pub mod request;
pub mod scheduler;
pub mod sfq;
pub mod sfqd2;
pub mod slab;
pub mod strict;

pub use baselines::{CgroupThrottle, CgroupWeight, Fifo};
pub use broker::{BrokerStats, SchedulingBroker, Staleness};
pub use env::WorkerBudget;
pub use controller::{ControllerConfig, DepthController};
pub use intern::{Symbol, SymbolTable};
pub use request::{AppId, IoClass, IoKind, Request};
pub use scheduler::{IoScheduler, Policy, SchedStats, ServiceMap};
pub use sfq::{SfqConfig, SfqD};
pub use sfqd2::{SfqD2, SfqD2Config};
pub use strict::StrictPartition;

/// The types most users need.
pub mod prelude {
    pub use crate::baselines::{CgroupThrottle, CgroupWeight, Fifo};
    pub use crate::broker::SchedulingBroker;
    pub use crate::controller::ControllerConfig;
    pub use crate::request::{AppId, IoClass, IoKind, Request};
    pub use crate::scheduler::{IoScheduler, Policy};
    pub use crate::sfq::{SfqConfig, SfqD};
    pub use crate::sfqd2::{SfqD2, SfqD2Config};
}
