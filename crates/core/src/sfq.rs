//! SFQ(D): start-time fair queuing over a concurrent server, with the
//! DSFQ total-service delay extension.
//!
//! The algorithm (§4 of the paper; Jin et al., SIGMETRICS'04):
//!
//! * Every request `r` of flow `f` (cost `c` = bytes, weight `φ_f`) gets a
//!   **start tag** `S(r) = max(v, F_prev(f) + δ/φ_f)` and a **finish tag**
//!   `F(r) = S(r) + c/φ_f`, where `F_prev(f)` is the finish tag of `f`'s
//!   previous request and `v` is the virtual time — the start tag of the
//!   most recently dispatched request.
//! * Up to `D` requests may be outstanding at the device; whenever a slot
//!   frees, the queued request with the smallest start tag is dispatched
//!   (FIFO among ties).
//!
//! `δ` is the DSFQ delay (Wang & Merchant, FAST'07), the mechanism §5 uses
//! for *total-service* proportional sharing: it equals the I/O service the
//! flow received **on other datanodes** since its previous local request,
//! as learned from the scheduling broker. A flow that is being served
//! generously elsewhere has its local start tags pushed back, so the local
//! scheduler compensates and the *cluster-wide* service converges to the
//! weight ratio. With no broker attached `δ` is always zero and this is
//! exactly classic SFQ(D).

use crate::broker::Staleness;
use crate::request::{AppId, IoKind, Request};
use crate::scheduler::{IoScheduler, SchedStats};
use ibis_obs::{EventBuf, EventKind};
use ibis_simcore::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration for [`SfqD`].
#[derive(Debug, Clone)]
pub struct SfqConfig {
    /// Number of requests allowed outstanding at the device (the `D` in
    /// SFQ(D)).
    pub depth: u32,
    /// Upper bound, in bytes, on the DSFQ delay consumed per arrival.
    /// `None` applies the full observed foreign service. A cap trades
    /// total-service accuracy for protection against long stalls when a
    /// flow returns to a node after consuming heavily elsewhere (ablation
    /// `ablate_delay_cap`).
    pub delay_cap: Option<u64>,
}

impl Default for SfqConfig {
    fn default() -> Self {
        SfqConfig {
            depth: 8,
            delay_cap: None,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct FlowState {
    weight: f64,
    /// Finish tag of the flow's most recent arrival.
    finish_tag: f64,
    /// Bytes of completed local service, cumulative.
    local_service: u64,
    /// Portion of `local_service` not yet drained to the broker.
    unreported: u64,
    /// Total foreign (other-node) service learned from the broker,
    /// cumulative and monotone.
    foreign_total: u64,
    /// Portion of `foreign_total` already folded into start tags.
    foreign_consumed: u64,
    /// Requests queued for this flow (for introspection only).
    backlog: usize,
    /// Bytes queued for this flow (for introspection only).
    backlog_bytes: u64,
}

impl FlowState {
    fn new(weight: f64) -> Self {
        FlowState {
            weight,
            ..FlowState::default()
        }
    }
}

/// Flow state interned to dense indices: `AppId`s map to slots in a
/// contiguous `Vec`, so the per-request hot path (tag computation on
/// submit, backlog bookkeeping on dispatch) indexes an array instead of
/// hashing. A device queue serves at most a handful of flows, so the
/// intern lookup is a short linear scan over a `Vec<AppId>` that lives in
/// one cache line. `AppId(u32::MAX)` (the cgroup daemon flow) precludes
/// value-indexing, hence the intern table.
#[derive(Debug, Default)]
struct FlowTable {
    ids: Vec<AppId>,
    flows: Vec<FlowState>,
}

impl FlowTable {
    /// The dense index of `app`, if it was ever seen.
    fn index_of(&self, app: AppId) -> Option<usize> {
        self.ids.iter().position(|&a| a == app)
    }

    /// The dense index of `app`, creating weight-1.0 state on first sight.
    fn intern(&mut self, app: AppId) -> usize {
        match self.index_of(app) {
            Some(i) => i,
            None => {
                self.ids.push(app);
                self.flows.push(FlowState::new(1.0));
                self.ids.len() - 1
            }
        }
    }

    fn get(&self, app: AppId) -> Option<&FlowState> {
        self.index_of(app).map(|i| &self.flows[i])
    }

    /// Iterates `(app, flow)` pairs in intern order.
    fn iter_mut(&mut self) -> impl Iterator<Item = (AppId, &mut FlowState)> {
        self.ids.iter().copied().zip(self.flows.iter_mut())
    }

    /// Iterates `(app, flow)` pairs in intern order, read-only.
    fn iter(&self) -> impl Iterator<Item = (AppId, &FlowState)> {
        self.ids.iter().copied().zip(self.flows.iter())
    }
}

struct HeapEntry {
    start: f64,
    seq: u64,
    /// Dense [`FlowTable`] index of `req.app`, so dispatch updates the
    /// flow without re-resolving the id.
    flow: u32,
    req: Request,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for min-(start, seq).
        other
            .start
            .total_cmp(&self.start)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The SFQ(D) scheduler. See the module docs for the algorithm.
pub struct SfqD {
    cfg: SfqConfig,
    flows: FlowTable,
    queue: BinaryHeap<HeapEntry>,
    /// Virtual time: start tag of the most recently dispatched request.
    vtime: f64,
    outstanding: u32,
    next_seq: u64,
    stats: SchedStats,
    /// Flight-recorder emissions; one branch per site when disabled.
    obs: EventBuf,
    /// Virtual time of the last broker sync applied, for staleness
    /// telemetry.
    last_sync: Option<SimTime>,
    /// Graceful degradation (fault injection): while set, arrivals charge
    /// zero DSFQ delay — pure local SFQ(D) — because the broker totals
    /// are stale. Unconsumed foreign service stays pending and is charged
    /// after recovery.
    degraded: bool,
    /// When the current degraded episode began.
    degraded_since: Option<SimTime>,
    /// Degraded episodes entered, cumulative.
    degraded_entries: u64,
    /// Set on the first `update_staleness` call — i.e. only in fault
    /// runs — so fault-free metrics output is unchanged.
    staleness_tracked: bool,
}

impl SfqD {
    /// Creates a scheduler from its configuration.
    pub fn new(cfg: SfqConfig) -> Self {
        assert!(cfg.depth >= 1, "SFQ(D) needs D >= 1");
        SfqD {
            cfg,
            flows: FlowTable::default(),
            queue: BinaryHeap::new(),
            vtime: 0.0,
            outstanding: 0,
            next_seq: 0,
            stats: SchedStats::default(),
            obs: EventBuf::new(),
            last_sync: None,
            degraded: false,
            degraded_since: None,
            degraded_entries: 0,
            staleness_tracked: false,
        }
    }

    /// Current depth bound.
    pub fn depth(&self) -> u32 {
        self.cfg.depth
    }

    /// Changes the depth bound; used by the SFQ(D2) controller. Raising it
    /// takes effect on the next `pop_dispatch`; lowering it never revokes
    /// already-outstanding requests (they drain naturally).
    pub fn set_depth(&mut self, depth: u32) {
        self.cfg.depth = depth.max(1);
    }

    /// Number of queued requests belonging to `app`.
    pub fn backlog(&self, app: AppId) -> usize {
        self.flows.get(app).map_or(0, |f| f.backlog)
    }

    /// The current virtual time (for tests and invariant checks).
    pub fn virtual_time(&self) -> f64 {
        self.vtime
    }

    fn flow_mut(&mut self, app: AppId) -> &mut FlowState {
        let i = self.flows.intern(app);
        &mut self.flows.flows[i]
    }

    /// The emission buffer, shared with the SFQ(D2) wrapper so controller
    /// events interleave with scheduling events in true order.
    pub(crate) fn obs_buf_mut(&mut self) -> &mut EventBuf {
        &mut self.obs
    }

    /// Outlined emit paths: event construction stays out of the
    /// submit/dispatch hot loops, so a disabled recorder costs exactly one
    /// untaken branch per call site.
    #[inline(never)]
    fn obs_submitted(&mut self, now: SimTime, req: &Request, delay: u64, start: f64) {
        if delay > 0 {
            self.obs.push(
                now,
                EventKind::DelayApplied {
                    app: req.app.0,
                    delay,
                },
            );
        }
        self.obs.push(
            now,
            EventKind::RequestTagged {
                io: req.id,
                app: req.app.0,
                bytes: req.bytes,
                write: !req.kind.is_read(),
                start_tag: start,
            },
        );
    }

    #[inline(never)]
    fn obs_dispatched(&mut self, now: SimTime, io: u64, app: u32, start_tag: f64) {
        self.obs.push(now, EventKind::Dispatched { io, app, start_tag });
    }
}

impl IoScheduler for SfqD {
    fn set_weight(&mut self, app: AppId, weight: f64) {
        assert!(weight > 0.0, "weights must be positive");
        self.flow_mut(app).weight = weight;
    }

    fn submit(&mut self, req: Request, now: SimTime) {
        let cap = self.cfg.delay_cap;
        let vtime = self.vtime;
        let seq = self.next_seq;
        self.next_seq += 1;

        let fi = self.flows.intern(req.app);
        let degraded = self.degraded;
        let flow = &mut self.flows.flows[fi];
        // DSFQ: consume the foreign service observed since this flow's
        // previous local arrival. While degraded the totals are stale, so
        // nothing is consumed or charged (pure local SFQ); the pending
        // foreign service is charged after the broker recovers.
        let delay = if degraded {
            0
        } else {
            let foreign = flow.foreign_total - flow.foreign_consumed;
            flow.foreign_consumed = flow.foreign_total;
            match cap {
                Some(c) => foreign.min(c),
                None => foreign,
            }
        };
        let start = vtime.max(flow.finish_tag + delay as f64 / flow.weight);
        let finish = start + req.bytes as f64 / flow.weight;
        flow.finish_tag = finish;
        flow.backlog += 1;
        flow.backlog_bytes += req.bytes;

        if self.obs.enabled() {
            self.obs_submitted(now, &req, delay, start);
        }

        self.queue.push(HeapEntry {
            start,
            seq,
            flow: fi as u32,
            req,
        });
        self.stats.submitted += 1;
        self.stats.decisions += 1;
    }

    fn pop_dispatch(&mut self, now: SimTime) -> Option<Request> {
        if self.outstanding >= self.cfg.depth {
            return None;
        }
        let entry = self.queue.pop()?;
        self.vtime = self.vtime.max(entry.start);
        self.outstanding += 1;
        // O(1): the heap entry carries the dense flow index.
        let flow = &mut self.flows.flows[entry.flow as usize];
        flow.backlog -= 1;
        flow.backlog_bytes -= entry.req.bytes;
        self.stats.dispatched += 1;
        self.stats.decisions += 1;
        if self.obs.enabled() {
            self.obs_dispatched(now, entry.req.id, entry.req.app.0, entry.start);
        }
        Some(entry.req)
    }

    fn on_complete(
        &mut self,
        app: AppId,
        _kind: IoKind,
        bytes: u64,
        _latency: SimDuration,
        _now: SimTime,
    ) {
        debug_assert!(self.outstanding > 0, "completion without dispatch");
        self.outstanding = self.outstanding.saturating_sub(1);
        self.stats.completed += 1;
        self.stats.decisions += 1;
        self.stats.service.add(app, bytes);
        let flow = self.flow_mut(app);
        flow.local_service += bytes;
        flow.unreported += bytes;
    }

    fn on_tick(&mut self, _now: SimTime) {}

    fn tick_period(&self) -> Option<SimDuration> {
        None
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn outstanding(&self) -> usize {
        self.outstanding as usize
    }

    fn drain_service_report(&mut self) -> Vec<(AppId, u64)> {
        // Linear scan over the dense table — no hash iteration.
        let mut report: Vec<(AppId, u64)> = self
            .flows
            .iter_mut()
            .filter(|(_, f)| f.unreported > 0)
            .map(|(app, f)| {
                let d = f.unreported;
                f.unreported = 0;
                (app, d)
            })
            .collect();
        // Deterministic order for the broker's byte accounting.
        report.sort_by_key(|&(app, _)| app);
        report
    }

    fn apply_global_service(&mut self, totals: &[(AppId, u64)], now: SimTime) {
        for &(app, total) in totals {
            let flow = self.flow_mut(app);
            let foreign = total.saturating_sub(flow.local_service);
            // Monotone: the broker may be momentarily behind our local view.
            flow.foreign_total = flow.foreign_total.max(foreign);
            if self.obs.enabled() {
                self.obs.push(now, EventKind::BrokerSync { app: app.0, total });
            }
        }
        self.last_sync = Some(now);
        self.stats.decisions += 1;
    }

    fn stats(&self) -> &SchedStats {
        &self.stats
    }

    fn update_staleness(&mut self, now: SimTime, bound: SimDuration) {
        self.staleness_tracked = true;
        let staleness = match self.last_sync {
            None => Staleness::Dark,
            Some(t) => {
                let age = now.saturating_since(t);
                if age > bound {
                    Staleness::Stale(age)
                } else {
                    Staleness::Fresh(age)
                }
            }
        };
        if staleness.usable() {
            if self.degraded {
                self.degraded = false;
                let since = self.degraded_since.take();
                if self.obs.enabled() {
                    let dark_ns = since.map_or(0, |t| now.saturating_since(t).as_nanos());
                    self.obs.push(now, EventKind::DegradedExit { dark_ns });
                }
            }
        } else if !self.degraded {
            self.degraded = true;
            self.degraded_since = Some(now);
            self.degraded_entries += 1;
            if self.obs.enabled() {
                let age_ns = staleness.age().map_or(u64::MAX, |a| a.as_nanos());
                self.obs.push(now, EventKind::DegradedEnter { age_ns });
            }
        }
    }

    fn is_degraded(&self) -> bool {
        self.degraded
    }

    fn degraded_entries(&self) -> u64 {
        self.degraded_entries
    }

    fn current_depth(&self) -> Option<u32> {
        Some(self.cfg.depth)
    }

    fn set_recording(&mut self, on: bool) {
        self.obs.set_enabled(on);
    }

    fn take_events(&mut self, sink: &mut Vec<(SimTime, EventKind)>) {
        self.obs.drain_into(sink);
    }

    fn sample_metrics(&self, now: SimTime, out: &mut Vec<ibis_metrics::Sample>) {
        use ibis_metrics::Sample;
        out.push(Sample::global("sched_queued", self.queue.len() as f64));
        out.push(Sample::global("sched_outstanding", self.outstanding as f64));
        out.push(Sample::global("sfq_depth", self.cfg.depth as f64));
        out.push(Sample::global("sfq_vtime", self.vtime));
        if let Some(age) = self.last_sync.map(|t| now.saturating_since(t)) {
            out.push(Sample::global("sfq_sync_age_s", age.as_secs_f64()));
        }
        // Degradation telemetry only exists in fault runs, so fault-free
        // metrics exports stay byte-identical.
        if self.staleness_tracked {
            out.push(Sample::global(
                "sfq_degraded",
                if self.degraded { 1.0 } else { 0.0 },
            ));
            out.push(Sample::global(
                "sfq_degraded_entries",
                self.degraded_entries as f64,
            ));
        }
        for (app, flow) in self.flows.iter() {
            let a = app.0;
            out.push(Sample::per_flow("sfq_flow_backlog_reqs", a, flow.backlog as f64));
            out.push(Sample::per_flow(
                "sfq_flow_backlog_bytes",
                a,
                flow.backlog_bytes as f64,
            ));
            // How far the flow's newest finish tag runs ahead of virtual
            // time: the service (in weighted bytes) it is owed or owes.
            out.push(Sample::per_flow("sfq_flow_tag_lag", a, flow.finish_tag - self.vtime));
            out.push(Sample::per_flow(
                "sfq_flow_local_service_bytes",
                a,
                flow.local_service as f64,
            ));
            out.push(Sample::per_flow(
                "sfq_flow_foreign_bytes",
                a,
                flow.foreign_total as f64,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoClass;

    const A: AppId = AppId(1);
    const B: AppId = AppId(2);

    fn req(id: u64, app: AppId, bytes: u64) -> Request {
        Request::new(id, app, IoKind::Read, bytes)
    }

    fn drain_order(s: &mut SfqD) -> Vec<u64> {
        let mut order = Vec::new();
        loop {
            while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
                order.push(r.id);
                s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
            }
            if s.queued() == 0 {
                break;
            }
        }
        order
    }

    #[test]
    fn fifo_within_single_flow() {
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        for i in 0..5 {
            s.submit(req(i, A, 100), SimTime::ZERO);
        }
        assert_eq!(drain_order(&mut s), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equal_weights_interleave() {
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        s.set_weight(A, 1.0);
        s.set_weight(B, 1.0);
        // A floods first, then B: equal weights must interleave, not FIFO.
        for i in 0..4 {
            s.submit(req(i, A, 100), SimTime::ZERO);
        }
        for i in 10..14 {
            s.submit(req(i, B, 100), SimTime::ZERO);
        }
        let order = drain_order(&mut s);
        // First request of B must be served long before A drains.
        let first_b = order.iter().position(|&id| id >= 10).unwrap();
        assert!(first_b <= 2, "B starved: {order:?}");
        // Counting service in any prefix: |served_A - served_B| <= 1 + 1.
        let mut a = 0i64;
        let mut b = 0i64;
        for &id in &order[..6] {
            if id < 10 {
                a += 1;
            } else {
                b += 1;
            }
        }
        assert!((a - b).abs() <= 2, "unfair prefix: {order:?}");
    }

    #[test]
    fn weights_skew_service() {
        // weight 3:1, equal request sizes → A gets ~3 of every 4 services
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        s.set_weight(A, 3.0);
        s.set_weight(B, 1.0);
        for i in 0..30 {
            s.submit(req(i, A, 100), SimTime::ZERO);
        }
        for i in 100..130 {
            s.submit(req(i, B, 100), SimTime::ZERO);
        }
        let order = drain_order(&mut s);
        let a_in_first_20 = order[..20].iter().filter(|&&id| id < 100).count();
        assert!(
            (14..=16).contains(&a_in_first_20),
            "expected ~15 A services in first 20, got {a_in_first_20}: {order:?}"
        );
    }

    #[test]
    fn cost_by_bytes_not_count() {
        // B's requests are 4× larger; equal weights → A should get ~4× the
        // request count so that *bytes* are equal.
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        for i in 0..40 {
            s.submit(req(i, A, 100), SimTime::ZERO);
        }
        for i in 100..110 {
            s.submit(req(i, B, 400), SimTime::ZERO);
        }
        let order = drain_order(&mut s);
        let a_bytes: u64 = order[..25].iter().filter(|&&id| id < 100).count() as u64 * 100;
        let b_bytes: u64 = order[..25].iter().filter(|&&id| id >= 100).count() as u64 * 400;
        let ratio = a_bytes as f64 / b_bytes.max(1) as f64;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "byte-shares not balanced: A={a_bytes} B={b_bytes} ({order:?})"
        );
    }

    #[test]
    fn depth_bounds_outstanding() {
        let mut s = SfqD::new(SfqConfig { depth: 3, ..Default::default() });
        for i in 0..10 {
            s.submit(req(i, A, 100), SimTime::ZERO);
        }
        let mut got = Vec::new();
        while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
            got.push(r);
        }
        assert_eq!(got.len(), 3);
        assert_eq!(s.outstanding(), 3);
        assert_eq!(s.queued(), 7);
        // Completing one frees one slot.
        s.on_complete(A, IoKind::Read, 100, SimDuration::ZERO, SimTime::ZERO);
        assert!(s.pop_dispatch(SimTime::ZERO).is_some());
        assert!(s.pop_dispatch(SimTime::ZERO).is_none());
    }

    #[test]
    fn set_depth_applies_immediately_upward() {
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        for i in 0..4 {
            s.submit(req(i, A, 100), SimTime::ZERO);
        }
        assert!(s.pop_dispatch(SimTime::ZERO).is_some());
        assert!(s.pop_dispatch(SimTime::ZERO).is_none());
        s.set_depth(3);
        assert!(s.pop_dispatch(SimTime::ZERO).is_some());
        assert!(s.pop_dispatch(SimTime::ZERO).is_some());
        assert!(s.pop_dispatch(SimTime::ZERO).is_none());
        assert_eq!(s.outstanding(), 3);
    }

    #[test]
    fn set_depth_never_revokes() {
        let mut s = SfqD::new(SfqConfig { depth: 4, ..Default::default() });
        for i in 0..4 {
            s.submit(req(i, A, 100), SimTime::ZERO);
        }
        while s.pop_dispatch(SimTime::ZERO).is_some() {}
        assert_eq!(s.outstanding(), 4);
        s.set_depth(1);
        assert_eq!(s.outstanding(), 4);
        // New dispatches blocked until we drain below 1.
        s.submit(req(10, A, 100), SimTime::ZERO);
        assert!(s.pop_dispatch(SimTime::ZERO).is_none());
        for _ in 0..4 {
            s.on_complete(A, IoKind::Read, 100, SimDuration::ZERO, SimTime::ZERO);
        }
        assert!(s.pop_dispatch(SimTime::ZERO).is_some());
    }

    #[test]
    fn idle_flow_gets_no_credit() {
        // A serves 10 requests while B is idle; B's first request must not
        // pre-empt the *entire* backlog it "missed" — SFQ start tags jump
        // to the current virtual time.
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        for i in 0..10 {
            s.submit(req(i, A, 100), SimTime::ZERO);
        }
        // serve 5 of A
        for _ in 0..5 {
            let r = s.pop_dispatch(SimTime::ZERO).unwrap();
            s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
        }
        // B arrives: should interleave with A's remaining 5, not get 5 free
        // services.
        for i in 100..105 {
            s.submit(req(i, B, 100), SimTime::ZERO);
        }
        let order = drain_order(&mut s);
        let b_in_first_4 = order[..4].iter().filter(|&&id| id >= 100).count();
        assert!(b_in_first_4 <= 3, "B got idle credit: {order:?}");
        // but B is not starved either
        assert!(order[..4].iter().any(|&id| id >= 100), "{order:?}");
    }

    #[test]
    fn dsfq_delay_pushes_flow_back() {
        // Two flows, equal weights. The broker tells us A already received
        // lots of service elsewhere; A's next requests must yield to B.
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        s.set_weight(A, 1.0);
        s.set_weight(B, 1.0);
        s.apply_global_service(&[(A, 1000)], SimTime::ZERO);
        for i in 0..5 {
            s.submit(req(i, A, 100), SimTime::ZERO);
        }
        for i in 100..105 {
            s.submit(req(i, B, 100), SimTime::ZERO);
        }
        let order = drain_order(&mut s);
        // A owes 1000 bytes = 10 services of 100; B's 5 requests all go
        // first.
        assert_eq!(
            order[..5].iter().filter(|&&id| id >= 100).count(),
            5,
            "foreign service not charged: {order:?}"
        );
    }

    #[test]
    fn dsfq_delay_consumed_once() {
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        s.apply_global_service(&[(A, 500)], SimTime::ZERO);
        s.submit(req(0, A, 100), SimTime::ZERO); // consumes the 500 delay
        s.submit(req(1, A, 100), SimTime::ZERO); // must not pay again
        let r0 = s.pop_dispatch(SimTime::ZERO).unwrap();
        s.on_complete(r0.app, r0.kind, r0.bytes, SimDuration::ZERO, SimTime::ZERO);
        // After both arrivals, flow finish tag reflects 500 delay once:
        // S(r0) = 500, F = 600; S(r1) = 600, F = 700.
        let f = s.flows.get(A).unwrap();
        assert_eq!(f.finish_tag, 700.0);
    }

    #[test]
    fn dsfq_delay_cap_limits_stall() {
        let mut s = SfqD::new(SfqConfig {
            depth: 1,
            delay_cap: Some(100),
        });
        s.apply_global_service(&[(A, 10_000)], SimTime::ZERO);
        s.submit(req(0, A, 100), SimTime::ZERO);
        let f = s.flows.get(A).unwrap();
        // capped: S = 100 (not 10 000), F = 200
        assert_eq!(f.finish_tag, 200.0);
    }

    #[test]
    fn global_totals_below_local_are_ignored() {
        let mut s = SfqD::new(SfqConfig::default());
        s.submit(req(0, A, 100), SimTime::ZERO);
        let r = s.pop_dispatch(SimTime::ZERO).unwrap();
        s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
        // The broker lags: it reports less than we've locally delivered.
        s.apply_global_service(&[(A, 50)], SimTime::ZERO);
        let f = s.flows.get(A).unwrap();
        assert_eq!(f.foreign_total, 0);
    }

    #[test]
    fn service_report_drains_exactly_once() {
        let mut s = SfqD::new(SfqConfig::default());
        s.submit(req(0, A, 100), SimTime::ZERO);
        s.submit(req(1, B, 200), SimTime::ZERO);
        while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
            s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
        }
        let rep = s.drain_service_report();
        assert_eq!(rep, vec![(A, 100), (B, 200)]);
        assert!(s.drain_service_report().is_empty());
        s.submit(req(2, A, 50), SimTime::ZERO);
        let r = s.pop_dispatch(SimTime::ZERO).unwrap();
        s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
        assert_eq!(s.drain_service_report(), vec![(A, 50)]);
    }

    #[test]
    fn virtual_time_monotone() {
        let mut s = SfqD::new(SfqConfig::default());
        let mut last = s.virtual_time();
        for i in 0..50 {
            s.submit(req(i, if i % 2 == 0 { A } else { B }, 100 + i), SimTime::ZERO);
        }
        loop {
            match s.pop_dispatch(SimTime::ZERO) {
                Some(r) => {
                    assert!(s.virtual_time() >= last);
                    last = s.virtual_time();
                    s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
                }
                None if s.queued() == 0 => break,
                None => {}
            }
        }
    }

    #[test]
    fn stats_track_lifecycle() {
        let mut s = SfqD::new(SfqConfig::default());
        s.submit(
            Request::new(0, A, IoKind::Write, 100).with_class(IoClass::Intermediate),
            SimTime::ZERO,
        );
        let r = s.pop_dispatch(SimTime::ZERO).unwrap();
        s.on_complete(r.app, r.kind, r.bytes, SimDuration::from_millis(5), SimTime::ZERO);
        let st = s.stats();
        assert_eq!(st.submitted, 1);
        assert_eq!(st.dispatched, 1);
        assert_eq!(st.completed, 1);
        assert_eq!(st.service.get(A), Some(100));
    }

    #[test]
    fn recording_captures_lifecycle_in_order() {
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        s.set_recording(true);
        s.apply_global_service(&[(A, 500)], SimTime::ZERO);
        s.submit(req(0, A, 100), SimTime::from_secs(1));
        let r = s.pop_dispatch(SimTime::from_secs(2)).unwrap();
        s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::from_secs(3));
        let mut out = Vec::new();
        s.take_events(&mut out);
        // BrokerSync, DelayApplied (500 foreign), RequestTagged, Dispatched
        // — in processing order; completions are recorded by the engine.
        assert_eq!(out.len(), 4);
        assert!(matches!(out[0].1, EventKind::BrokerSync { app: 1, total: 500 }));
        assert!(matches!(out[1].1, EventKind::DelayApplied { app: 1, delay: 500 }));
        assert!(
            matches!(out[2].1, EventKind::RequestTagged { io: 0, app: 1, bytes: 100, start_tag, .. } if start_tag == 500.0)
        );
        assert!(matches!(out[3].1, EventKind::Dispatched { io: 0, app: 1, .. }));
        assert!(s.drain_service_report() == vec![(A, 100)]);
    }

    #[test]
    fn recording_off_buffers_nothing() {
        let mut s = SfqD::new(SfqConfig::default());
        s.submit(req(0, A, 100), SimTime::ZERO);
        let _ = s.pop_dispatch(SimTime::ZERO);
        let mut out = Vec::new();
        s.take_events(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn backlog_tracks_per_flow() {
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        s.submit(req(0, A, 100), SimTime::ZERO);
        s.submit(req(1, A, 100), SimTime::ZERO);
        s.submit(req(2, B, 100), SimTime::ZERO);
        assert_eq!(s.backlog(A), 2);
        assert_eq!(s.backlog(B), 1);
        let _ = s.pop_dispatch(SimTime::ZERO).unwrap();
        assert_eq!(s.backlog(A) + s.backlog(B), 2);
    }

    #[test]
    fn degraded_mode_charges_no_delay_and_defers_foreign() {
        let bound = SimDuration::from_secs(3);
        let mut s = SfqD::new(SfqConfig { depth: 1, ..Default::default() });
        s.set_weight(A, 1.0);
        s.set_weight(B, 1.0);
        // Sync at t=0: A has 1000 B of foreign service pending.
        s.apply_global_service(&[(A, 1000)], SimTime::ZERO);
        assert!(!s.is_degraded());
        // Broker goes dark; by t=5 the totals exceed the 3 s bound.
        s.update_staleness(SimTime::from_secs(5), bound);
        assert!(s.is_degraded());
        // Degraded arrivals: A pays nothing despite the pending foreign.
        s.submit(req(0, A, 100), SimTime::from_secs(5));
        s.submit(req(100, B, 100), SimTime::from_secs(5));
        let f = s.flows.get(A).unwrap();
        assert_eq!(f.finish_tag, 100.0, "no DSFQ delay while degraded");
        assert_eq!(f.foreign_consumed, 0, "foreign stays pending");
        // Broker recovers at t=6; the pending foreign is charged on the
        // next arrival — re-convergence.
        s.apply_global_service(&[(A, 1000)], SimTime::from_secs(6));
        s.update_staleness(SimTime::from_secs(6), bound);
        assert!(!s.is_degraded());
        s.submit(req(1, A, 100), SimTime::from_secs(6));
        let f = s.flows.get(A).unwrap();
        // S = max(v, F_prev + 1000/1) = 1100, F = 1200.
        assert_eq!(f.finish_tag, 1200.0, "deferred foreign charged on recovery");
    }

    #[test]
    fn degraded_without_any_sync_is_dark() {
        let mut s = SfqD::new(SfqConfig::default());
        s.update_staleness(SimTime::from_secs(1), SimDuration::from_secs(3));
        assert!(s.is_degraded(), "never-synced scheduler must degrade");
        s.apply_global_service(&[(A, 10)], SimTime::from_secs(2));
        s.update_staleness(SimTime::from_secs(2), SimDuration::from_secs(3));
        assert!(!s.is_degraded());
    }

    #[test]
    fn degraded_transitions_emit_obs_markers() {
        let mut s = SfqD::new(SfqConfig::default());
        s.set_recording(true);
        let bound = SimDuration::from_secs(3);
        s.apply_global_service(&[(A, 10)], SimTime::ZERO);
        s.update_staleness(SimTime::from_secs(10), bound); // stale → enter
        s.update_staleness(SimTime::from_secs(11), bound); // still stale → no-op
        s.apply_global_service(&[(A, 20)], SimTime::from_secs(12));
        s.update_staleness(SimTime::from_secs(12), bound); // fresh → exit
        let mut out = Vec::new();
        s.take_events(&mut out);
        let markers: Vec<&EventKind> = out
            .iter()
            .map(|(_, k)| k)
            .filter(|k| {
                matches!(k, EventKind::DegradedEnter { .. } | EventKind::DegradedExit { .. })
            })
            .collect();
        assert_eq!(markers.len(), 2, "{out:?}");
        assert!(
            matches!(markers[0], EventKind::DegradedEnter { age_ns } if *age_ns == 10_000_000_000)
        );
        assert!(
            matches!(markers[1], EventKind::DegradedExit { dark_ns } if *dark_ns == 2_000_000_000)
        );
    }

    #[test]
    fn sample_metrics_exposes_queue_and_flows() {
        use ibis_metrics::Sample;
        let mut s = SfqD::new(SfqConfig { depth: 2, ..Default::default() });
        s.submit(req(0, A, 100), SimTime::ZERO);
        s.submit(req(1, A, 300), SimTime::ZERO);
        s.submit(req(2, B, 50), SimTime::ZERO);
        let _ = s.pop_dispatch(SimTime::ZERO).unwrap(); // dispatches A's first
        s.apply_global_service(&[(B, 500)], SimTime::from_secs(3));

        let mut out = Vec::new();
        s.sample_metrics(SimTime::from_secs(5), &mut out);
        let find = |name: &str, app: Option<u32>| -> f64 {
            out.iter()
                .find(|smp: &&Sample| smp.name == name && smp.app == app)
                .unwrap_or_else(|| panic!("missing {name} {app:?}"))
                .value
        };
        assert_eq!(find("sched_queued", None), 2.0);
        assert_eq!(find("sched_outstanding", None), 1.0);
        assert_eq!(find("sfq_depth", None), 2.0);
        assert_eq!(find("sfq_flow_backlog_reqs", Some(1)), 1.0);
        assert_eq!(find("sfq_flow_backlog_bytes", Some(1)), 300.0);
        assert_eq!(find("sfq_flow_backlog_bytes", Some(2)), 50.0);
        assert_eq!(find("sfq_flow_foreign_bytes", Some(2)), 500.0);
        // sync applied at t=3, sampled at t=5 → 2 s stale
        assert_eq!(find("sfq_sync_age_s", None), 2.0);
        // A's finish tag (400) runs ahead of vtime (0)
        assert_eq!(find("sfq_flow_tag_lag", Some(1)), 400.0);
    }
}
