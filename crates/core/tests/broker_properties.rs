//! Property-based tests of the scheduling broker (§5): per-app totals are
//! monotone, retiring an app frees its state, and a retired app can come
//! back and accumulate from zero as if newly seen.

use ibis_core::broker::SchedulingBroker;
use ibis_core::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// One broker interaction: a scheduler report or a job-completion retire.
#[derive(Debug, Clone)]
enum Op {
    Report(Vec<(u8, u32)>),
    Retire(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec((0u8..6, 0u32..1_000_000), 0..4).prop_map(Op::Report),
        1 => (0u8..6).prop_map(Op::Retire),
    ]
}

proptest! {
    #[test]
    fn totals_monotone_and_retire_resurrects(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut broker = SchedulingBroker::new();
        // Reference model: what the totals must be, replayed naively.
        let mut model: HashMap<AppId, u64> = HashMap::new();
        let mut last_reply: HashMap<AppId, u64> = HashMap::new();

        for op in &ops {
            match op {
                Op::Report(entries) => {
                    let local: Vec<(AppId, u64)> = entries
                        .iter()
                        .map(|&(a, b)| (AppId(a as u32), b as u64))
                        .collect();
                    let reply = broker.report(&local);

                    // The reply covers exactly the reported apps, in order.
                    let reported: Vec<AppId> = local.iter().map(|&(a, _)| a).collect();
                    let replied: Vec<AppId> = reply.iter().map(|&(a, _)| a).collect();
                    prop_assert_eq!(&replied, &reported);

                    for &(app, bytes) in &local {
                        *model.entry(app).or_insert(0) += bytes;
                    }
                    for &(app, total) in &reply {
                        // Replies match the model (resurrection restarts
                        // from the post-retire report, not stale totals).
                        prop_assert_eq!(total, model[&app]);
                        // Monotone per app across replies while live.
                        if let Some(&prev) = last_reply.get(&app) {
                            prop_assert!(total >= prev, "total regressed for {app:?}");
                        }
                        last_reply.insert(app, total);
                    }
                }
                Op::Retire(a) => {
                    let app = AppId(*a as u32);
                    let before = broker.state_bytes();
                    let was_live = broker.total(app).is_some();
                    broker.retire(app);
                    // Retire frees exactly one entry's worth of state.
                    if was_live {
                        prop_assert!(broker.state_bytes() < before);
                    } else {
                        prop_assert_eq!(broker.state_bytes(), before);
                    }
                    prop_assert_eq!(broker.total(app), None);
                    model.remove(&app);
                    // A later resurrection starts a fresh monotone series.
                    last_reply.remove(&app);
                }
            }
            // State is exactly 12 bytes per live app, never more.
            prop_assert_eq!(broker.state_bytes(), 12 * broker.live_apps() as u64);
            prop_assert_eq!(broker.live_apps(), model.len());
        }
    }

    #[test]
    fn report_totals_equal_sum_of_reports(
        per_node in prop::collection::vec(prop::collection::vec((0u8..4, 1u32..100_000), 1..4), 1..20)
    ) {
        // Any interleaving of node reports sums to the same totals.
        let mut broker = SchedulingBroker::new();
        let mut sums: HashMap<AppId, u64> = HashMap::new();
        for node_report in &per_node {
            let local: Vec<(AppId, u64)> = node_report
                .iter()
                .map(|&(a, b)| (AppId(a as u32), b as u64))
                .collect();
            for &(app, bytes) in &local {
                *sums.entry(app).or_insert(0) += bytes;
            }
            broker.report(&local);
        }
        for (&app, &expect) in &sums {
            prop_assert_eq!(broker.total(app), Some(expect));
        }
    }
}
