//! Property-based tests of the scheduling broker (§5): per-app totals are
//! monotone, invariant under reordering of reports within a sync period,
//! retiring an app frees its state, and a retired app can come back and
//! accumulate from zero as if newly seen.

use ibis_core::broker::SchedulingBroker;
use ibis_core::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// One broker interaction: a scheduler report or a job-completion retire.
#[derive(Debug, Clone)]
enum Op {
    Report(Vec<(u8, u32)>),
    Retire(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec((0u8..6, 0u32..1_000_000), 0..4).prop_map(Op::Report),
        1 => (0u8..6).prop_map(Op::Retire),
    ]
}

proptest! {
    #[test]
    fn totals_monotone_and_retire_resurrects(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut broker = SchedulingBroker::new();
        // Reference model: what the totals must be, replayed naively.
        let mut model: HashMap<AppId, u64> = HashMap::new();
        let mut last_reply: HashMap<AppId, u64> = HashMap::new();

        for op in &ops {
            match op {
                Op::Report(entries) => {
                    let local: Vec<(AppId, u64)> = entries
                        .iter()
                        .map(|&(a, b)| (AppId(a as u32), b as u64))
                        .collect();
                    let reply = broker.report(&local);

                    // The reply covers exactly the reported apps, in order.
                    let reported: Vec<AppId> = local.iter().map(|&(a, _)| a).collect();
                    let replied: Vec<AppId> = reply.iter().map(|&(a, _)| a).collect();
                    prop_assert_eq!(&replied, &reported);

                    for &(app, bytes) in &local {
                        *model.entry(app).or_insert(0) += bytes;
                    }
                    for &(app, total) in &reply {
                        // Replies match the model (resurrection restarts
                        // from the post-retire report, not stale totals).
                        prop_assert_eq!(total, model[&app]);
                        // Monotone per app across replies while live.
                        if let Some(&prev) = last_reply.get(&app) {
                            prop_assert!(total >= prev, "total regressed for {app:?}");
                        }
                        last_reply.insert(app, total);
                    }
                }
                Op::Retire(a) => {
                    let app = AppId(*a as u32);
                    let before = broker.state_bytes();
                    let was_live = broker.total(app).is_some();
                    broker.retire(app);
                    // Retire frees exactly one entry's worth of state.
                    if was_live {
                        prop_assert!(broker.state_bytes() < before);
                    } else {
                        prop_assert_eq!(broker.state_bytes(), before);
                    }
                    prop_assert_eq!(broker.total(app), None);
                    model.remove(&app);
                    // A later resurrection starts a fresh monotone series.
                    last_reply.remove(&app);
                }
            }
            // State is exactly 12 bytes per live app, never more.
            prop_assert_eq!(broker.state_bytes(), 12 * broker.live_apps() as u64);
            prop_assert_eq!(broker.live_apps(), model.len());
        }
    }

    #[test]
    fn report_totals_equal_sum_of_reports(
        per_node in prop::collection::vec(prop::collection::vec((0u8..4, 1u32..100_000), 1..4), 1..20)
    ) {
        // Any interleaving of node reports sums to the same totals.
        let mut broker = SchedulingBroker::new();
        let mut sums: HashMap<AppId, u64> = HashMap::new();
        for node_report in &per_node {
            let local: Vec<(AppId, u64)> = node_report
                .iter()
                .map(|&(a, b)| (AppId(a as u32), b as u64))
                .collect();
            for &(app, bytes) in &local {
                *sums.entry(app).or_insert(0) += bytes;
            }
            broker.report(&local);
        }
        for (&app, &expect) in &sums {
            prop_assert_eq!(broker.total(app), Some(expect));
        }
    }

    #[test]
    fn totals_invariant_under_report_reordering(
        original in prop::collection::vec(
            prop::collection::vec((0u8..4, 1u32..100_000), 1..4), 1..12,
        ),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        // The fault model reorders report arrivals within a sync period
        // (drops + retries + delays). Whatever order the per-node reports
        // land in, the broker's end-of-period totals — the values every
        // scheduler's DSFQ delay is computed from — must be identical.
        // Fisher–Yates with a splitmix64 stream (the vendored proptest
        // shim has no prop_shuffle).
        let mut shuffled = original.clone();
        let mut state = shuffle_seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        let apply = |order: &[Vec<(u8, u32)>]| {
            let mut broker = SchedulingBroker::new();
            for node_report in order {
                let local: Vec<(AppId, u64)> = node_report
                    .iter()
                    .map(|&(a, b)| (AppId(a as u32), b as u64))
                    .collect();
                broker.report(&local);
            }
            let mut totals: Vec<(u32, u64)> = (0..4u32)
                .filter_map(|a| broker.total(AppId(a)).map(|t| (a, t)))
                .collect();
            totals.sort_unstable();
            totals
        };
        prop_assert_eq!(apply(&original), apply(&shuffled));
    }
}
