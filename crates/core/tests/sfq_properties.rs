//! Property-based tests of the SFQ(D) scheduler invariants.

use ibis_core::prelude::*;
use ibis_core::scheduler::IoScheduler;
use ibis_core::sfq::{SfqConfig, SfqD};
use ibis_simcore::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::HashSet;

/// An abstract workload: per-op either a submission (flow, bytes) or a
/// "complete one outstanding" instruction.
#[derive(Debug, Clone)]
enum Op {
    Submit { flow: u8, bytes: u32 },
    CompleteOne,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..6, 1u32..10_000_000).prop_map(|(flow, bytes)| Op::Submit { flow, bytes }),
        2 => Just(Op::CompleteOne),
    ]
}

/// Drives the scheduler through the op sequence, checking invariants at
/// every step. Returns (dispatched ids, completed count).
fn drive(depth: u32, ops: &[Op]) -> (Vec<u64>, usize) {
    let mut s = SfqD::new(SfqConfig {
        depth,
        delay_cap: None,
    });
    for f in 0..6u8 {
        s.set_weight(AppId(f as u32), 1.0 + f as f64);
    }
    let mut next_id = 0u64;
    let mut outstanding: Vec<Request> = Vec::new();
    let mut dispatched_ids = Vec::new();
    let mut completed = 0usize;
    let mut last_vtime = s.virtual_time();

    for op in ops {
        match op {
            Op::Submit { flow, bytes } => {
                let req = Request::new(next_id, AppId(*flow as u32), IoKind::Read, *bytes as u64);
                next_id += 1;
                s.submit(req, SimTime::ZERO);
            }
            Op::CompleteOne => {
                if let Some(r) = outstanding.pop() {
                    s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
                    completed += 1;
                }
            }
        }
        // Pump: dispatch as much as the depth allows.
        while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
            dispatched_ids.push(r.id);
            outstanding.push(r);
        }
        // Invariant: outstanding bounded by depth.
        assert!(
            s.outstanding() <= depth as usize,
            "outstanding {} > depth {depth}",
            s.outstanding()
        );
        // Invariant: the queue is only non-empty when the depth is
        // saturated (work conservation).
        if s.queued() > 0 {
            assert_eq!(s.outstanding(), depth as usize, "idle slot with backlog");
        }
        // Invariant: virtual time never goes backwards.
        assert!(s.virtual_time() >= last_vtime, "vtime regressed");
        last_vtime = s.virtual_time();
    }
    (dispatched_ids, completed)
}

proptest! {
    #[test]
    fn no_request_lost_or_duplicated(depth in 1u32..16, ops in prop::collection::vec(op_strategy(), 1..200)) {
        let (dispatched, _) = drive(depth, &ops);
        let unique: HashSet<u64> = dispatched.iter().copied().collect();
        prop_assert_eq!(unique.len(), dispatched.len(), "duplicate dispatch");
    }

    #[test]
    fn drain_dispatches_everything(depth in 1u32..16, ops in prop::collection::vec(op_strategy(), 1..200)) {
        // After the op sequence, completing everything must eventually
        // dispatch every submitted request.
        let mut s = SfqD::new(SfqConfig { depth, delay_cap: None });
        let mut submitted = 0u64;
        let mut outstanding: Vec<Request> = Vec::new();
        let mut dispatched = 0u64;
        for op in &ops {
            match op {
                Op::Submit { flow, bytes } => {
                    s.submit(
                        Request::new(submitted, AppId(*flow as u32), IoKind::Write, *bytes as u64),
                        SimTime::ZERO,
                    );
                    submitted += 1;
                }
                Op::CompleteOne => {
                    if let Some(r) = outstanding.pop() {
                        s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
                    }
                }
            }
            while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
                dispatched += 1;
                outstanding.push(r);
            }
        }
        // Drain.
        while let Some(r) = outstanding.pop() {
            s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
            while let Some(r2) = s.pop_dispatch(SimTime::ZERO) {
                dispatched += 1;
                outstanding.push(r2);
            }
        }
        prop_assert_eq!(dispatched, submitted);
        prop_assert_eq!(s.queued(), 0);
    }

    /// SFQ fairness: for two continuously backlogged flows with equal
    /// request sizes, the weighted service difference over any run is
    /// bounded (Goyal's theorem gives ~one max-cost per flow; we allow a
    /// small slack for the dispatch quantisation).
    #[test]
    fn backlogged_flows_share_by_weight(
        w1 in 1u32..8,
        w2 in 1u32..8,
        depth in 1u32..8,
        services in 32usize..200,
    ) {
        let mut s = SfqD::new(SfqConfig { depth, delay_cap: None });
        let (a, b) = (AppId(1), AppId(2));
        s.set_weight(a, w1 as f64);
        s.set_weight(b, w2 as f64);
        const COST: u64 = 1_000_000;
        // Keep both flows saturated.
        let mut id = 0u64;
        let backlog = |s: &mut SfqD, id: &mut u64| {
            while s.backlog(a) < 4 {
                s.submit(Request::new(*id, a, IoKind::Read, COST), SimTime::ZERO);
                *id += 1;
            }
            while s.backlog(b) < 4 {
                s.submit(Request::new(*id, b, IoKind::Read, COST), SimTime::ZERO);
                *id += 1;
            }
        };
        backlog(&mut s, &mut id);
        let mut served = [0u64; 3];
        let mut outstanding = Vec::new();
        for _ in 0..services {
            while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
                outstanding.push(r);
            }
            if let Some(r) = outstanding.pop() {
                served[r.app.0 as usize] += r.bytes;
                s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
            }
            backlog(&mut s, &mut id);
        }
        let norm1 = served[1] as f64 / w1 as f64;
        let norm2 = served[2] as f64 / w2 as f64;
        // Bound: |S1/w1 − S2/w2| ≤ slack · COST, slack covers the depth
        // window plus one request per flow.
        let slack = (depth as f64 + 2.0) * COST as f64;
        prop_assert!(
            (norm1 - norm2).abs() <= slack * 2.0,
            "unfair: {norm1} vs {norm2} (slack {slack})"
        );
    }

    /// DSFQ: foreign service always delays, never advances, a flow.
    #[test]
    fn foreign_service_never_helps(foreign in 0u64..10_000_000, n in 1usize..20) {
        let serve_all = |delay: u64| -> Vec<u64> {
            let mut s = SfqD::new(SfqConfig { depth: 1, delay_cap: None });
            s.set_weight(AppId(1), 1.0);
            s.set_weight(AppId(2), 1.0);
            if delay > 0 {
                s.apply_global_service(&[(AppId(1), delay)], SimTime::ZERO);
            }
            for i in 0..n as u64 {
                s.submit(Request::new(i, AppId(1), IoKind::Read, 1000), SimTime::ZERO);
                s.submit(Request::new(100 + i, AppId(2), IoKind::Read, 1000), SimTime::ZERO);
            }
            let mut order = Vec::new();
            while let Some(r) = s.pop_dispatch(SimTime::ZERO) {
                order.push(r.id);
                s.on_complete(r.app, r.kind, r.bytes, SimDuration::ZERO, SimTime::ZERO);
            }
            order
        };
        let base = serve_all(0);
        let delayed = serve_all(foreign);
        // Position of flow 1's first request must not improve under delay.
        let pos = |order: &[u64]| order.iter().position(|&x| x < 100).unwrap();
        prop_assert!(pos(&delayed) >= pos(&base));
    }
}
