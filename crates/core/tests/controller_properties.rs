//! Property-based tests of the SFQ(D2) controller and the scheduling
//! broker.

use ibis_core::{AppId, ControllerConfig, DepthController, SchedulingBroker};
use ibis_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// D stays within the configured bounds for any observation stream,
    /// gain, and reference.
    #[test]
    fn depth_always_in_bounds(
        gain in 1e-8f64..1e-3,
        ref_ms in 1u64..500,
        lat_ms in prop::collection::vec((prop::bool::ANY, 1u64..5_000), 1..300),
    ) {
        let mut c = DepthController::new(
            ControllerConfig {
                gain_per_us: gain,
                ..ControllerConfig::default()
            }
            .with_reference(SimDuration::from_millis(ref_ms)),
        );
        for (t, chunk) in (1u64..).zip(lat_ms.chunks(7)) {
            for &(is_read, ms) in chunk {
                c.observe(is_read, SimDuration::from_millis(ms));
            }
            c.maybe_update(SimTime::from_secs(t));
            let d = c.depth_f64();
            prop_assert!((1.0..=12.0).contains(&d), "D={d}");
            prop_assert!(c.depth() >= 1 && c.depth() <= 12);
        }
    }

    /// One unclamped update moves D by exactly K·(L_ref − L) (Eq. 1).
    #[test]
    fn update_magnitude_is_eq1(
        ref_ms in 10u64..200,
        lat_ms in 10u64..200,
    ) {
        let gain = 1e-6;
        let mut c = DepthController::new(
            ControllerConfig {
                gain_per_us: gain,
                d_init: 6.0,
                ..ControllerConfig::default()
            }
            .with_reference(SimDuration::from_millis(ref_ms)),
        );
        c.observe(true, SimDuration::from_millis(lat_ms));
        c.maybe_update(SimTime::from_secs(1));
        let expected = (6.0 + gain * 1e3 * (ref_ms as f64 - lat_ms as f64))
            .clamp(1.0, 12.0);
        prop_assert!((c.depth_f64() - expected).abs() < 1e-9,
            "got {}, expected {expected}", c.depth_f64());
    }

    /// The broker's total for each app equals the sum of everything ever
    /// reported for it, regardless of how reports interleave across
    /// schedulers.
    #[test]
    fn broker_totals_are_exact_sums(
        reports in prop::collection::vec(
            prop::collection::vec((0u32..5, 1u64..1_000_000), 0..4),
            1..100,
        ),
    ) {
        let mut broker = SchedulingBroker::new();
        let mut expected = std::collections::HashMap::new();
        for report in &reports {
            let entries: Vec<(AppId, u64)> =
                report.iter().map(|&(a, b)| (AppId(a), b)).collect();
            let reply = broker.report(&entries);
            for (app, bytes) in &entries {
                *expected.entry(*app).or_insert(0u64) += bytes;
            }
            // Every reply entry matches the running expectation.
            for (app, total) in reply {
                prop_assert_eq!(total, expected[&app]);
            }
        }
        for (app, total) in &expected {
            prop_assert_eq!(broker.total(*app), Some(*total));
        }
    }

    /// Broker payload accounting is linear in the entries exchanged.
    #[test]
    fn broker_payload_is_linear(n_entries in 0usize..32) {
        let mut broker = SchedulingBroker::new();
        let report: Vec<(AppId, u64)> =
            (0..n_entries as u32).map(|a| (AppId(a), 1)).collect();
        broker.report(&report);
        let expected = 2 * (16 + 12 * n_entries as u64);
        prop_assert_eq!(broker.stats().payload_bytes, expected);
    }
}
