//! Critical-path extraction over a DAG of timed spans.
//!
//! Generic over anything with a name, a `[start, end)` interval, and
//! dependency edges: `workgen` DAG stages, span-tree jobs, or task
//! chains. The critical path is the dependency chain with the largest
//! total duration — the chain that bounds the makespan, since every
//! other chain could shrink to zero without finishing later than it.

/// One node of the timed DAG. Dependencies must point at smaller
/// indices (the natural order for `workgen::DagSpec` stages).
#[derive(Debug, Clone, PartialEq)]
pub struct CpNode {
    /// Display label ("reduce", "stage-3", "job 17"…).
    pub label: String,
    /// Span start, nanoseconds.
    pub start_ns: u64,
    /// Span end, nanoseconds.
    pub end_ns: u64,
    /// Indices of the nodes this one depends on (all `<` own index).
    pub deps: Vec<usize>,
}

impl CpNode {
    /// Span duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The extracted path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPath {
    /// Node indices along the path, dependency order (source first).
    pub nodes: Vec<usize>,
    /// Total duration of the path's spans, nanoseconds.
    pub length_ns: u64,
    /// Path duration as a fraction of the DAG makespan (max end − min
    /// start); 1.0 means the path alone bounds the makespan, lower
    /// values mean inter-stage gaps (queueing, slot waits) dominate.
    pub coverage: f64,
}

/// Longest-duration dependency chain via one topological DP pass.
/// Ties break toward the smaller predecessor index, so the extraction
/// is deterministic. Panics if a dependency points forward.
pub fn critical_path(nodes: &[CpNode]) -> CriticalPath {
    if nodes.is_empty() {
        return CriticalPath::default();
    }
    let mut best: Vec<u64> = Vec::with_capacity(nodes.len());
    let mut from: Vec<Option<usize>> = Vec::with_capacity(nodes.len());
    for (i, n) in nodes.iter().enumerate() {
        let mut b = 0u64;
        let mut f = None;
        for &d in &n.deps {
            assert!(d < i, "critical_path: dependency {d} of node {i} is not earlier");
            if best[d] > b {
                b = best[d];
                f = Some(d);
            }
        }
        best.push(b + n.duration_ns());
        from.push(f);
    }
    let (mut at, _) = best
        .iter()
        .enumerate()
        .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
        .expect("non-empty");
    let length_ns = best[at];
    let mut path = vec![at];
    while let Some(p) = from[at] {
        path.push(p);
        at = p;
    }
    path.reverse();
    let span = nodes.iter().map(|n| n.end_ns).max().unwrap_or(0)
        - nodes.iter().map(|n| n.start_ns).min().unwrap_or(0);
    CriticalPath {
        nodes: path,
        length_ns,
        coverage: if span == 0 {
            1.0
        } else {
            length_ns as f64 / span as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(label: &str, start: u64, end: u64, deps: &[usize]) -> CpNode {
        CpNode {
            label: label.into(),
            start_ns: start,
            end_ns: end,
            deps: deps.to_vec(),
        }
    }

    #[test]
    fn diamond_picks_the_longer_arm() {
        // a → {b (long), c (short)} → d
        let nodes = vec![
            n("a", 0, 100, &[]),
            n("b", 100, 500, &[0]),
            n("c", 100, 150, &[0]),
            n("d", 500, 600, &[1, 2]),
        ];
        let cp = critical_path(&nodes);
        assert_eq!(cp.nodes, vec![0, 1, 3]);
        assert_eq!(cp.length_ns, 600);
        assert!((cp.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaps_lower_coverage() {
        let nodes = vec![n("a", 0, 100, &[]), n("b", 900, 1000, &[0])];
        let cp = critical_path(&nodes);
        assert_eq!(cp.length_ns, 200);
        assert!((cp.coverage - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_dag_is_empty_path() {
        assert_eq!(critical_path(&[]), CriticalPath::default());
    }
}
