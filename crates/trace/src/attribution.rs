//! Latency attribution: decomposes each application's arrival→completion
//! latency into named components that **provably sum to the total**.
//!
//! The algorithm is a boundary sweep over the recording. Every lifecycle
//! event contributes edges (job opened/closed, request queued/dispatched/
//! completed, degraded episode begun/ended, node down/up); between two
//! consecutive edge instants the per-app state is constant, so each
//! elementary interval is charged to exactly one component, weighted by
//! the number of the app's open jobs (an app with three overlapping jobs
//! accrues three seconds of latency per wall second, exactly as the sum
//! of its per-job latencies does). Because the charge is integer
//! nanoseconds and every interval lands in exactly one bucket, the
//! component sum equals the swept total *exactly*, and the swept total
//! equals the measured per-job latency sum whenever the recording is
//! complete (no ring truncation).

use ibis_obs::{EventKind, Recording};
use std::collections::{HashMap, HashSet};

/// Component names, in classification-priority order: a device-service
/// interval wins over a delay charge, which wins over a degraded episode,
/// and so on. `other` is the remainder (compute, network transfer, slot
/// waits — time with the job open but no I/O in flight or queued).
pub const COMPONENTS: [&str; 6] = [
    "device_service",
    "dsfq_delay",
    "degraded_wait",
    "queue_wait",
    "fault_stall",
    "other",
];

const DEVICE_SERVICE: usize = 0;
const DSFQ_DELAY: usize = 1;
const DEGRADED_WAIT: usize = 2;
const QUEUE_WAIT: usize = 3;
const FAULT_STALL: usize = 4;
const OTHER: usize = 5;

/// One application's latency decomposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AppAttribution {
    /// Application (flow) id — a tenant's shared id, or the job-derived
    /// id of a tenant-less job.
    pub app: u32,
    /// Completed jobs the decomposition covers.
    pub jobs: u64,
    /// Σ `JobCompleted.latency_ns` — the measured arrival→completion
    /// latency this decomposition must account for.
    pub measured_ns: u64,
    /// Σ elementary-interval charges — equals the component sum exactly,
    /// and `measured_ns` when the recording is complete.
    pub swept_ns: u64,
    /// Nanoseconds charged to each component, [`COMPONENTS`] order.
    pub components: [u64; 6],
}

impl AppAttribution {
    /// Nanoseconds charged to the named component.
    pub fn component_ns(&self, name: &str) -> u64 {
        COMPONENTS
            .iter()
            .position(|&c| c == name)
            .map_or(0, |i| self.components[i])
    }

    /// The exact sum of the component charges.
    pub fn components_sum_ns(&self) -> u64 {
        self.components.iter().sum()
    }

    /// The dominant component `(name, ns)`; ties break toward the
    /// higher-priority (earlier) component.
    pub fn dominant(&self) -> (&'static str, u64) {
        let mut best = 0;
        for i in 1..COMPONENTS.len() {
            if self.components[i] > self.components[best] {
                best = i;
            }
        }
        (COMPONENTS[best], self.components[best])
    }

    /// Component share of the swept total, in [0, 1].
    pub fn fraction(&self, name: &str) -> f64 {
        if self.swept_ns == 0 {
            0.0
        } else {
            self.component_ns(name) as f64 / self.swept_ns as f64
        }
    }
}

/// One sweep edge. Edges are applied in recording order within an
/// instant, which keeps the (rare) same-instant interactions between
/// queue and degraded-episode bookkeeping deterministic.
enum Edge {
    OpenJobs {
        app: u32,
        delta: i64,
    },
    Service {
        app: u32,
        delta: i64,
    },
    Queued {
        app: u32,
        node: u32,
        dev: u8,
        delta: i64,
        delayed: bool,
    },
    Degraded {
        node: u32,
        dev: u8,
        on: bool,
    },
    NodeDown {
        delta: i64,
    },
}

#[derive(Default)]
struct AppState {
    open_jobs: i64,
    in_service: i64,
    queued: i64,
    delayed_queued: i64,
    queued_on_degraded: i64,
    per_dd: HashMap<(u32, u8), i64>,
    acc: [u64; 6],
    measured_ns: u64,
    jobs: u64,
}

/// Runs the attribution sweep over `rec`. Returns one entry per
/// application seen in job-lifecycle events, sorted by app id.
/// Ring-truncated recordings degrade gracefully: unmatched opens are
/// dropped and negative counts clamp to zero, so the decomposition stays
/// a partition of whatever latency the surviving events describe.
pub fn attribute(rec: &Recording) -> Vec<AppAttribution> {
    // Pass 1: match request lifecycles and collect edges.
    let mut delayed_at: HashSet<(u32, u8, u32, u64)> = HashSet::new();
    for ev in rec.events() {
        if let EventKind::DelayApplied { app, .. } = ev.kind {
            delayed_at.insert((ev.node, ev.dev, app, ev.at.as_nanos()));
        }
    }

    let mut edges: Vec<(u64, Edge)> = Vec::new();
    let mut pending: HashMap<(u32, u8, u64), (u64, u32)> = HashMap::new();
    for ev in rec.events() {
        let (node, dev, t) = (ev.node, ev.dev, ev.at.as_nanos());
        match ev.kind {
            EventKind::JobArrived { app, .. } => {
                edges.push((t, Edge::OpenJobs { app, delta: 1 }));
            }
            EventKind::JobCompleted { app, .. } => {
                edges.push((t, Edge::OpenJobs { app, delta: -1 }));
            }
            EventKind::IoQueued { io, app, .. } => {
                pending.insert((node, dev, io), (t, app));
            }
            EventKind::Completed {
                io,
                app,
                latency_ns,
                ..
            } => {
                let dispatch = t.saturating_sub(latency_ns);
                if let Some((t_q, q_app)) = pending.remove(&(node, dev, io)) {
                    let dispatch = dispatch.max(t_q);
                    let delayed = delayed_at.contains(&(node, dev, q_app, t_q));
                    edges.push((
                        t_q,
                        Edge::Queued {
                            app: q_app,
                            node,
                            dev,
                            delta: 1,
                            delayed,
                        },
                    ));
                    edges.push((
                        dispatch,
                        Edge::Queued {
                            app: q_app,
                            node,
                            dev,
                            delta: -1,
                            delayed,
                        },
                    ));
                    edges.push((dispatch, Edge::Service { app, delta: 1 }));
                } else {
                    // Truncated open: count the service interval alone.
                    edges.push((dispatch, Edge::Service { app, delta: 1 }));
                }
                edges.push((t, Edge::Service { app, delta: -1 }));
            }
            EventKind::DegradedEnter { .. } => {
                edges.push((t, Edge::Degraded { node, dev, on: true }));
            }
            EventKind::DegradedExit { .. } => {
                edges.push((t, Edge::Degraded { node, dev, on: false }));
            }
            EventKind::FaultInjected { kind, .. } => match kind {
                3 => edges.push((t, Edge::NodeDown { delta: 1 })),
                4 => edges.push((t, Edge::NodeDown { delta: -1 })),
                _ => {}
            },
            _ => {}
        }
    }
    // Stable by instant: same-instant edges keep recording order.
    edges.sort_by_key(|&(t, _)| t);

    // Measured totals come straight from the completion events.
    let mut apps: HashMap<u32, AppState> = HashMap::new();
    for ev in rec.events() {
        match ev.kind {
            EventKind::JobArrived { app, .. } => {
                apps.entry(app).or_default();
            }
            EventKind::JobCompleted { app, latency_ns, .. } => {
                let s = apps.entry(app).or_default();
                s.measured_ns += latency_ns;
                s.jobs += 1;
            }
            _ => {}
        }
    }

    // Pass 2: the sweep. Accumulate the elapsed elementary interval for
    // every app with open jobs, then apply the edges at the new instant.
    let mut degraded: HashSet<(u32, u8)> = HashSet::new();
    let mut dd_apps: HashMap<(u32, u8), HashMap<u32, i64>> = HashMap::new();
    let mut down_nodes: i64 = 0;
    let mut prev: Option<u64> = None;
    let mut i = 0;
    while i < edges.len() {
        let t = edges[i].0;
        if let Some(p) = prev {
            let len = t - p;
            if len > 0 {
                for s in apps.values_mut() {
                    if s.open_jobs <= 0 {
                        continue;
                    }
                    let slot = if s.in_service > 0 {
                        DEVICE_SERVICE
                    } else if s.delayed_queued > 0 {
                        DSFQ_DELAY
                    } else if s.queued_on_degraded > 0 {
                        DEGRADED_WAIT
                    } else if s.queued > 0 {
                        QUEUE_WAIT
                    } else if down_nodes > 0 {
                        FAULT_STALL
                    } else {
                        OTHER
                    };
                    s.acc[slot] += len * s.open_jobs as u64;
                }
            }
        }
        prev = Some(t);
        while i < edges.len() && edges[i].0 == t {
            match &edges[i].1 {
                Edge::OpenJobs { app, delta } => {
                    let s = apps.entry(*app).or_default();
                    s.open_jobs = (s.open_jobs + delta).max(0);
                }
                Edge::Service { app, delta } => {
                    let s = apps.entry(*app).or_default();
                    s.in_service = (s.in_service + delta).max(0);
                }
                Edge::Queued {
                    app,
                    node,
                    dev,
                    delta,
                    delayed,
                } => {
                    let dd = (*node, *dev);
                    let s = apps.entry(*app).or_default();
                    s.queued = (s.queued + delta).max(0);
                    if *delayed {
                        s.delayed_queued = (s.delayed_queued + delta).max(0);
                    }
                    let c = s.per_dd.entry(dd).or_insert(0);
                    *c = (*c + delta).max(0);
                    if degraded.contains(&dd) {
                        s.queued_on_degraded = (s.queued_on_degraded + delta).max(0);
                    }
                    let e = dd_apps.entry(dd).or_default().entry(*app).or_insert(0);
                    *e = (*e + delta).max(0);
                }
                Edge::Degraded { node, dev, on } => {
                    let dd = (*node, *dev);
                    let was = degraded.contains(&dd);
                    if *on && !was {
                        degraded.insert(dd);
                        if let Some(per_app) = dd_apps.get(&dd) {
                            for (&app, &n) in per_app {
                                if let Some(s) = apps.get_mut(&app) {
                                    s.queued_on_degraded += n;
                                }
                            }
                        }
                    } else if !*on && was {
                        degraded.remove(&dd);
                        if let Some(per_app) = dd_apps.get(&dd) {
                            for (&app, &n) in per_app {
                                if let Some(s) = apps.get_mut(&app) {
                                    s.queued_on_degraded = (s.queued_on_degraded - n).max(0);
                                }
                            }
                        }
                    }
                }
                Edge::NodeDown { delta } => {
                    down_nodes = (down_nodes + delta).max(0);
                }
            }
            i += 1;
        }
    }

    let mut out: Vec<AppAttribution> = apps
        .into_iter()
        .filter(|(_, s)| s.jobs > 0 || s.acc.iter().any(|&v| v > 0))
        .map(|(app, s)| AppAttribution {
            app,
            jobs: s.jobs,
            measured_ns: s.measured_ns,
            swept_ns: s.acc.iter().sum(),
            components: s.acc,
        })
        .collect();
    out.sort_by_key(|a| a.app);
    out
}

/// The machine-checkable attribution invariant: for every application,
/// the component charges sum exactly to the swept total, and the swept
/// total matches the measured latency within `rel_tol` (relative; exact
/// equality is expected on complete recordings — the tolerance absorbs
/// the float round-trip of millisecond-facing consumers).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributionCheck {
    /// Applications examined.
    pub checked: u64,
    /// Applications whose decomposition failed the invariant.
    pub violations: u64,
    /// Largest relative |swept − measured| / measured observed.
    pub worst_rel_err: f64,
    /// True when the recording lost events to ring truncation — the
    /// sweep-vs-measured comparison is then advisory, not a violation.
    pub truncated: bool,
}

/// Checks the attribution invariant over `rec` (see [`AttributionCheck`]).
pub fn check(rec: &Recording, rel_tol: f64) -> AttributionCheck {
    let truncated = rec.dropped_total() > 0;
    let mut out = AttributionCheck {
        truncated,
        ..AttributionCheck::default()
    };
    for a in attribute(rec) {
        out.checked += 1;
        let exact = a.components_sum_ns() == a.swept_ns;
        let rel = if a.measured_ns == 0 {
            if a.swept_ns == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            (a.swept_ns as f64 - a.measured_ns as f64).abs() / a.measured_ns as f64
        };
        out.worst_rel_err = out.worst_rel_err.max(rel);
        if !exact || (!truncated && rel > rel_tol) {
            out.violations += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_obs::{FlightRecorder, ObsEvent, RecordingMeta};
    use ibis_simcore::SimTime;

    fn ev(at: u64, node: u32, dev: u8, kind: EventKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_nanos(at),
            node,
            dev,
            kind,
        }
    }

    fn finish(rec: FlightRecorder) -> Recording {
        rec.finish(RecordingMeta {
            weights: vec![(1, 1.0)],
            sync_period_ns: 1_000_000_000,
            nodes: 2,
        })
    }

    #[test]
    fn single_job_decomposes_exactly() {
        let mut rec = FlightRecorder::new(2, 64);
        rec.record(ev(0, 0, 0, EventKind::JobArrived { job: 1, app: 1 }));
        // Request queued at 100, dispatched at 400, completed at 1000.
        rec.record(ev(100, 0, 0, EventKind::IoQueued { io: 9, app: 1, bytes: 64, write: false }));
        rec.record(ev(1000, 0, 0, EventKind::Completed {
            io: 9,
            app: 1,
            bytes: 64,
            write: false,
            latency_ns: 600,
        }));
        rec.record(ev(2000, 0, 0, EventKind::JobCompleted { job: 1, app: 1, latency_ns: 2000 }));
        let atts = attribute(&finish(rec));
        assert_eq!(atts.len(), 1);
        let a = &atts[0];
        assert_eq!(a.measured_ns, 2000);
        assert_eq!(a.swept_ns, 2000);
        assert_eq!(a.component_ns("queue_wait"), 300);
        assert_eq!(a.component_ns("device_service"), 600);
        // other = [0,100) pre-queue + [1000,2000) post-I/O.
        assert_eq!(a.component_ns("other"), 1100);
        assert_eq!(a.components_sum_ns(), a.swept_ns);
    }

    #[test]
    fn delay_charge_classifies_queue_wait_as_dsfq_delay() {
        let mut rec = FlightRecorder::new(1, 64);
        rec.record(ev(0, 0, 0, EventKind::JobArrived { job: 1, app: 1 }));
        rec.record(ev(100, 0, 0, EventKind::DelayApplied { app: 1, delay: 4096 }));
        rec.record(ev(100, 0, 0, EventKind::IoQueued { io: 1, app: 1, bytes: 64, write: false }));
        rec.record(ev(900, 0, 0, EventKind::Completed {
            io: 1,
            app: 1,
            bytes: 64,
            write: false,
            latency_ns: 300,
        }));
        rec.record(ev(900, 0, 0, EventKind::JobCompleted { job: 1, app: 1, latency_ns: 900 }));
        let atts = attribute(&finish(rec));
        let a = &atts[0];
        assert_eq!(a.component_ns("dsfq_delay"), 500);
        assert_eq!(a.component_ns("queue_wait"), 0);
        assert_eq!(a.component_ns("device_service"), 300);
        assert_eq!(a.swept_ns, a.measured_ns);
    }

    #[test]
    fn degraded_episode_recolors_queue_wait() {
        let mut rec = FlightRecorder::new(1, 64);
        rec.record(ev(0, 0, 0, EventKind::JobArrived { job: 1, app: 1 }));
        rec.record(ev(0, 0, 0, EventKind::IoQueued { io: 1, app: 1, bytes: 64, write: false }));
        rec.record(ev(200, 0, 0, EventKind::DegradedEnter { age_ns: 7 }));
        rec.record(ev(600, 0, 0, EventKind::DegradedExit { dark_ns: 400 }));
        rec.record(ev(1000, 0, 0, EventKind::Completed {
            io: 1,
            app: 1,
            bytes: 64,
            write: false,
            latency_ns: 200,
        }));
        rec.record(ev(1000, 0, 0, EventKind::JobCompleted { job: 1, app: 1, latency_ns: 1000 }));
        let a = &attribute(&finish(rec))[0];
        assert_eq!(a.component_ns("queue_wait"), 400); // [0,200) ∪ [600,800)
        assert_eq!(a.component_ns("degraded_wait"), 400); // [200,600)
        assert_eq!(a.component_ns("device_service"), 200);
        assert_eq!(a.swept_ns, a.measured_ns);
    }

    #[test]
    fn overlapping_jobs_weight_by_open_count() {
        let mut rec = FlightRecorder::new(1, 64);
        rec.record(ev(0, 0, 0, EventKind::JobArrived { job: 1, app: 1 }));
        rec.record(ev(0, 0, 0, EventKind::JobArrived { job: 2, app: 1 }));
        rec.record(ev(500, 0, 0, EventKind::JobCompleted { job: 1, app: 1, latency_ns: 500 }));
        rec.record(ev(800, 0, 0, EventKind::JobCompleted { job: 2, app: 1, latency_ns: 800 }));
        let a = &attribute(&finish(rec))[0];
        assert_eq!(a.measured_ns, 1300);
        assert_eq!(a.swept_ns, 1300); // 2×500 + 1×300
        assert_eq!(a.component_ns("other"), 1300);
    }

    #[test]
    fn check_passes_on_complete_recording() {
        let mut rec = FlightRecorder::new(1, 64);
        rec.record(ev(0, 0, 0, EventKind::JobArrived { job: 1, app: 1 }));
        rec.record(ev(700, 0, 0, EventKind::JobCompleted { job: 1, app: 1, latency_ns: 700 }));
        let c = check(&finish(rec), 1e-9);
        assert_eq!(c.checked, 1);
        assert_eq!(c.violations, 0);
        assert!(!c.truncated);
    }
}
