//! Engine self-profile: where the simulator's wall clock went.
//!
//! The partitioned engine (DESIGN.md §14) alternates window formation,
//! a parallel device-plane phase, and a serial apply replay; everything
//! else is the ordinary serial handler loop. The profile attributes
//! measured wall seconds to those phases so "why is this run slow"
//! is answerable without a system profiler. Collected only when tracing
//! is enabled — the timer calls would otherwise tax the hot loop.

use std::fmt;

/// Wall-clock attribution for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineProfile {
    /// Total wall seconds of the event loop.
    pub total_secs: f64,
    /// Window formation + member classification (serial).
    pub form_secs: f64,
    /// Parallel device-plane phase (worker pool busy).
    pub device_secs: f64,
    /// Serial apply replay of deferred member outputs.
    pub apply_secs: f64,
    /// Serial event handling (everything outside windows; includes the
    /// small-window serial fallback).
    pub handler_secs: f64,
    /// Windows formed.
    pub windows: u64,
    /// Windows large enough to run on the pool.
    pub pooled_windows: u64,
}

impl EngineProfile {
    /// Wall seconds not covered by the named phases (event-queue pops,
    /// bookkeeping between handlers).
    pub fn untracked_secs(&self) -> f64 {
        (self.total_secs - self.form_secs - self.device_secs - self.apply_secs
            - self.handler_secs)
            .max(0.0)
    }

    /// Phase share of total wall time, in [0, 1].
    pub fn share(&self, secs: f64) -> f64 {
        if self.total_secs <= 0.0 {
            0.0
        } else {
            (secs / self.total_secs).clamp(0.0, 1.0)
        }
    }
}

impl fmt::Display for EngineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "engine {:.3}s: form {:.1}% | device {:.1}% | apply {:.1}% | \
             handlers {:.1}% | other {:.1}% ({} windows, {} pooled)",
            self.total_secs,
            100.0 * self.share(self.form_secs),
            100.0 * self.share(self.device_secs),
            100.0 * self.share(self.apply_secs),
            100.0 * self.share(self.handler_secs),
            100.0 * self.share(self.untracked_secs()),
            self.windows,
            self.pooled_windows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_and_untracked() {
        let p = EngineProfile {
            total_secs: 2.0,
            form_secs: 0.2,
            device_secs: 1.0,
            apply_secs: 0.3,
            handler_secs: 0.4,
            windows: 10,
            pooled_windows: 4,
        };
        assert!((p.share(p.device_secs) - 0.5).abs() < 1e-12);
        assert!((p.untracked_secs() - 0.1).abs() < 1e-12);
        let s = p.to_string();
        assert!(s.contains("10 windows"));
    }
}
