//! Span assembly: turns the flat event recording into per-job span
//! trees (job → tasks → requests).
//!
//! Requests carry only their application id (the tenant flow), so a
//! request is attached to the app's **earliest-arrived job still open**
//! at the instant it was queued — exact for tenant-less jobs (one app
//! per job) and a deterministic convention for multi-job tenants. Within
//! a job, a request is further attached to a task when exactly one of
//! the job's tasks was running on the request's node at queue time.
//! Unmatched opens (ring truncation, in-flight at the cut) are dropped.

use ibis_obs::{EventKind, Recording};
use std::collections::{BTreeMap, HashMap};

/// One request lifecycle: queue wait `[queued, dispatched)` then device
/// service `[dispatched, completed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpan {
    /// Request id.
    pub io: u64,
    /// Node and device the request ran on.
    pub node: u32,
    /// Device index (0 = HDFS, 1 = scratch).
    pub dev: u8,
    /// Owning application id.
    pub app: u32,
    /// Instant the engine submitted the request to the scheduler.
    pub queued_ns: u64,
    /// Instant the scheduler handed it to the device.
    pub dispatched_ns: u64,
    /// Completion instant.
    pub completed_ns: u64,
    /// Request cost in bytes.
    pub bytes: u64,
    /// True for writes.
    pub write: bool,
    /// True when a DSFQ delay charge landed on this app at the queue
    /// instant (the queue wait includes charged foreign service).
    pub delayed: bool,
    /// Task id the request was attributed to, when unambiguous.
    pub task: Option<u32>,
}

impl RequestSpan {
    /// Queue-wait nanoseconds.
    pub fn queue_ns(&self) -> u64 {
        self.dispatched_ns - self.queued_ns
    }

    /// Device-service nanoseconds.
    pub fn service_ns(&self) -> u64 {
        self.completed_ns - self.dispatched_ns
    }
}

/// One task occupancy span.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpan {
    /// Task id (index, high bit set for reduces).
    pub task: u32,
    /// Node the task ran on.
    pub node: u32,
    /// Slot-grant instant.
    pub start_ns: u64,
    /// Slot-release instant.
    pub end_ns: u64,
}

/// One job's span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTree {
    /// Job id.
    pub job: u32,
    /// Application (flow) id.
    pub app: u32,
    /// Arrival instant.
    pub arrived_ns: u64,
    /// Completion instant.
    pub completed_ns: u64,
    /// Task spans, in start order.
    pub tasks: Vec<TaskSpan>,
    /// Request spans attributed to this job, in queue order.
    pub requests: Vec<RequestSpan>,
}

impl JobTree {
    /// Arrival→completion latency.
    pub fn latency_ns(&self) -> u64 {
        self.completed_ns - self.arrived_ns
    }
}

/// The assembled forest plus the spans that could not be attached.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanForest {
    /// Completed jobs, sorted by (arrival, job id).
    pub jobs: Vec<JobTree>,
    /// Requests whose app had no open job at queue time.
    pub unattached: Vec<RequestSpan>,
}

/// Assembles the span forest from `rec`.
pub fn build_forest(rec: &Recording) -> SpanForest {
    // Delay charges, for the per-request `delayed` flag.
    let mut delayed_at: std::collections::HashSet<(u32, u8, u32, u64)> =
        std::collections::HashSet::new();
    for ev in rec.events() {
        if let EventKind::DelayApplied { app, .. } = ev.kind {
            delayed_at.insert((ev.node, ev.dev, app, ev.at.as_nanos()));
        }
    }

    // Closed lifecycles.
    let mut req_open: HashMap<(u32, u8, u64), (u64, u32)> = HashMap::new();
    let mut task_open: HashMap<(u32, u32), (u64, u32)> = HashMap::new();
    let mut job_open: HashMap<u32, (u64, u32)> = HashMap::new();
    let mut requests: Vec<RequestSpan> = Vec::new();
    let mut tasks: Vec<(u32, TaskSpan)> = Vec::new(); // (job, span)
    let mut jobs: Vec<JobTree> = Vec::new();
    for ev in rec.events() {
        let (node, dev, t) = (ev.node, ev.dev, ev.at.as_nanos());
        match ev.kind {
            EventKind::IoQueued { io, app, .. } => {
                req_open.insert((node, dev, io), (t, app));
            }
            EventKind::Completed {
                io,
                app,
                bytes,
                write,
                latency_ns,
            } => {
                if let Some((queued, _)) = req_open.remove(&(node, dev, io)) {
                    let dispatched = t.saturating_sub(latency_ns).max(queued);
                    requests.push(RequestSpan {
                        io,
                        node,
                        dev,
                        app,
                        queued_ns: queued,
                        dispatched_ns: dispatched,
                        completed_ns: t.max(dispatched),
                        bytes,
                        write,
                        delayed: delayed_at.contains(&(node, dev, app, queued)),
                        task: None,
                    });
                }
            }
            EventKind::TaskStarted { job, task, .. } => {
                task_open.insert((job, task), (t, node));
            }
            EventKind::TaskFinished { job, task } => {
                if let Some((start, start_node)) = task_open.remove(&(job, task)) {
                    tasks.push((
                        job,
                        TaskSpan {
                            task,
                            node: start_node,
                            start_ns: start,
                            end_ns: t.max(start),
                        },
                    ));
                }
            }
            EventKind::JobArrived { job, app } => {
                job_open.insert(job, (t, app));
            }
            EventKind::JobCompleted { job, app, .. } => {
                if let Some((arrived, _)) = job_open.remove(&job) {
                    jobs.push(JobTree {
                        job,
                        app,
                        arrived_ns: arrived,
                        completed_ns: t.max(arrived),
                        tasks: Vec::new(),
                        requests: Vec::new(),
                    });
                }
            }
            _ => {}
        }
    }
    jobs.sort_by_key(|j| (j.arrived_ns, j.job));

    // Attach tasks by job id.
    let by_job: HashMap<u32, usize> = jobs.iter().enumerate().map(|(i, j)| (j.job, i)).collect();
    for (job, span) in tasks {
        if let Some(&i) = by_job.get(&job) {
            jobs[i].tasks.push(span);
        }
    }
    for j in &mut jobs {
        j.tasks.sort_by_key(|t| (t.start_ns, t.task));
    }

    // Attach requests: sweep arrivals/completions/queue instants in time
    // order, keeping the open-job set per app ordered by arrival.
    #[derive(Clone, Copy)]
    enum Mark {
        Open(usize),
        Close(usize),
        Req(usize),
    }
    let mut marks: Vec<(u64, u8, Mark)> = Vec::new();
    for (i, j) in jobs.iter().enumerate() {
        marks.push((j.arrived_ns, 0, Mark::Open(i)));
        marks.push((j.completed_ns, 2, Mark::Close(i)));
    }
    for (i, r) in requests.iter().enumerate() {
        marks.push((r.queued_ns, 1, Mark::Req(i)));
    }
    // Opens before requests before closes at the same instant: a request
    // queued exactly at arrival belongs to the arriving job.
    marks.sort_by_key(|&(t, rank, m)| {
        (
            t,
            rank,
            match m {
                Mark::Open(i) | Mark::Close(i) | Mark::Req(i) => i,
            },
        )
    });
    let mut open: HashMap<u32, BTreeMap<(u64, u32), usize>> = HashMap::new();
    let mut owner: Vec<Option<usize>> = vec![None; requests.len()];
    for (_, _, mark) in marks {
        match mark {
            Mark::Open(i) => {
                let j = &jobs[i];
                open.entry(j.app)
                    .or_default()
                    .insert((j.arrived_ns, j.job), i);
            }
            Mark::Close(i) => {
                let j = &jobs[i];
                open.entry(j.app).or_default().remove(&(j.arrived_ns, j.job));
            }
            Mark::Req(i) => {
                owner[i] = open
                    .get(&requests[i].app)
                    .and_then(|m| m.values().next().copied());
            }
        }
    }
    let mut unattached = Vec::new();
    for (i, mut r) in requests.into_iter().enumerate() {
        match owner[i] {
            Some(j) => {
                // Task attribution: unique running task on this node.
                let mut hits = jobs[j]
                    .tasks
                    .iter()
                    .filter(|t| {
                        t.node == r.node && t.start_ns <= r.queued_ns && r.queued_ns < t.end_ns
                    })
                    .map(|t| t.task);
                let first = hits.next();
                r.task = match (first, hits.next()) {
                    (Some(t), None) => Some(t),
                    _ => None,
                };
                jobs[j].requests.push(r);
            }
            None => unattached.push(r),
        }
    }
    for j in &mut jobs {
        j.requests.sort_by_key(|r| (r.queued_ns, r.node, r.dev, r.io));
    }
    SpanForest { jobs, unattached }
}

/// Structural well-formedness over a recording: every opened span is
/// closed, closes follow opens, and request phases are ordered. Returns
/// the number of complete request/task/job lifecycles, or the first
/// defect found. Ring-truncated recordings are rejected by the caller
/// (truncation legitimately orphans opens); requests still open on a
/// node that crashed are exempt — a crash sweeps in-flight I/O, and the
/// replacement request gets a fresh id.
pub fn check_well_formed(rec: &Recording) -> Result<(u64, u64, u64), String> {
    let mut crashed: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for ev in rec.events() {
        if let EventKind::FaultInjected { kind: 3, .. } = ev.kind {
            crashed.insert(ev.node);
        }
    }
    let mut req_open: HashMap<(u32, u8, u64), u64> = HashMap::new();
    let mut task_open: HashMap<(u32, u32), u64> = HashMap::new();
    let mut job_open: HashMap<u32, u64> = HashMap::new();
    let (mut reqs, mut tasks, mut jobs) = (0u64, 0u64, 0u64);
    for ev in rec.events() {
        let (node, dev, t) = (ev.node, ev.dev, ev.at.as_nanos());
        match ev.kind {
            EventKind::IoQueued { io, .. } => {
                let reopened = req_open.insert((node, dev, io), t).is_some();
                if reopened && !crashed.contains(&node) {
                    return Err(format!("io {io} queued twice on node {node} dev {dev}"));
                }
            }
            EventKind::Completed { io, latency_ns, .. } => {
                match req_open.remove(&(node, dev, io)) {
                    None => {
                        if !crashed.contains(&node) {
                            return Err(format!("io {io} completed without queue on node {node}"));
                        }
                    }
                    Some(q) => {
                        let dispatch = t.saturating_sub(latency_ns);
                        if dispatch < q {
                            return Err(format!(
                                "io {io} dispatched at {dispatch} before queued at {q}"
                            ));
                        }
                        reqs += 1;
                    }
                }
            }
            EventKind::TaskStarted { job, task, .. } => {
                let reopened = task_open.insert((job, task), t).is_some();
                if reopened {
                    return Err(format!("task {task} of job {job} started twice"));
                }
            }
            EventKind::TaskFinished { job, task } => match task_open.remove(&(job, task)) {
                None => return Err(format!("task {task} of job {job} finished unopened")),
                Some(s) => {
                    if t < s {
                        return Err(format!("task {task} of job {job} ends before start"));
                    }
                    tasks += 1;
                }
            },
            EventKind::JobArrived { job, .. } => {
                let reopened = job_open.insert(job, t).is_some();
                if reopened {
                    return Err(format!("job {job} arrived twice"));
                }
            }
            EventKind::JobCompleted { job, .. } => match job_open.remove(&job) {
                None => return Err(format!("job {job} completed unopened")),
                Some(s) => {
                    if t < s {
                        return Err(format!("job {job} completes before arrival"));
                    }
                    jobs += 1;
                }
            },
            _ => {}
        }
    }
    if let Some((&(node, dev, io), _)) =
        req_open.iter().find(|((node, _, _), _)| !crashed.contains(node))
    {
        return Err(format!("io {io} on node {node} dev {dev} never completed"));
    }
    if let Some((&(job, task), _)) = task_open.iter().next() {
        return Err(format!("task {task} of job {job} never finished"));
    }
    if let Some((&job, _)) = job_open.iter().next() {
        return Err(format!("job {job} never completed"));
    }
    Ok((reqs, tasks, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_obs::{FlightRecorder, ObsEvent, RecordingMeta};
    use ibis_simcore::SimTime;

    fn ev(at: u64, node: u32, dev: u8, kind: EventKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_nanos(at),
            node,
            dev,
            kind,
        }
    }

    fn sample() -> Recording {
        let mut rec = FlightRecorder::new(2, 64);
        rec.record(ev(0, 0, 0, EventKind::JobArrived { job: 1, app: 1 }));
        rec.record(ev(10, 1, 0, EventKind::TaskStarted { job: 1, task: 0, app: 1 }));
        rec.record(ev(20, 1, 0, EventKind::IoQueued { io: 5, app: 1, bytes: 64, write: false }));
        rec.record(ev(120, 1, 0, EventKind::Completed {
            io: 5,
            app: 1,
            bytes: 64,
            write: false,
            latency_ns: 60,
        }));
        rec.record(ev(150, 1, 0, EventKind::TaskFinished { job: 1, task: 0 }));
        rec.record(ev(200, 0, 0, EventKind::JobCompleted { job: 1, app: 1, latency_ns: 200 }));
        rec.finish(RecordingMeta {
            weights: vec![(1, 1.0)],
            sync_period_ns: 1_000_000_000,
            nodes: 2,
        })
    }

    #[test]
    fn builds_job_task_request_tree() {
        let forest = build_forest(&sample());
        assert_eq!(forest.jobs.len(), 1);
        assert!(forest.unattached.is_empty());
        let j = &forest.jobs[0];
        assert_eq!(j.latency_ns(), 200);
        assert_eq!(j.tasks.len(), 1);
        assert_eq!(j.requests.len(), 1);
        let r = &j.requests[0];
        assert_eq!(r.queue_ns(), 40); // dispatched at 120−60=60, queued 20
        assert_eq!(r.service_ns(), 60);
        assert_eq!(r.task, Some(0)); // unique running task on node 1
    }

    #[test]
    fn well_formedness_accepts_sample_and_rejects_orphans() {
        assert_eq!(check_well_formed(&sample()), Ok((1, 1, 1)));
        let mut rec = FlightRecorder::new(1, 8);
        rec.record(ev(5, 0, 0, EventKind::TaskStarted { job: 9, task: 3, app: 1 }));
        let r = rec.finish(RecordingMeta::default());
        assert!(check_well_formed(&r).is_err());
    }

    #[test]
    fn requests_attach_to_earliest_open_job() {
        let mut rec = FlightRecorder::new(1, 64);
        rec.record(ev(0, 0, 0, EventKind::JobArrived { job: 1, app: 7 }));
        rec.record(ev(50, 0, 0, EventKind::JobArrived { job: 2, app: 7 }));
        rec.record(ev(60, 0, 0, EventKind::IoQueued { io: 1, app: 7, bytes: 1, write: false }));
        rec.record(ev(80, 0, 0, EventKind::Completed {
            io: 1,
            app: 7,
            bytes: 1,
            write: false,
            latency_ns: 10,
        }));
        rec.record(ev(100, 0, 0, EventKind::JobCompleted { job: 1, app: 7, latency_ns: 100 }));
        rec.record(ev(150, 0, 0, EventKind::JobCompleted { job: 2, app: 7, latency_ns: 100 }));
        let forest = build_forest(&rec.finish(RecordingMeta::default()));
        assert_eq!(forest.jobs[0].job, 1);
        assert_eq!(forest.jobs[0].requests.len(), 1);
        assert!(forest.jobs[1].requests.is_empty());
    }
}
