//! # ibis-trace — causal span tracing and latency attribution
//!
//! Turns the flat `ibis-obs` event recording into causal structure:
//!
//! * **Span trees** ([`span`]): per-request lifecycles (queue wait →
//!   device service) nested under tasks and jobs, plus a structural
//!   well-formedness checker.
//! * **Latency attribution** ([`attribution`]): each application's
//!   arrival→completion latency decomposed into named components —
//!   device service, DSFQ delay charge, degraded-mode wait, queue wait,
//!   fault stall, other — that **sum exactly to the swept total** (the
//!   sweep is integer nanoseconds and every elementary interval lands in
//!   exactly one bucket).
//! * **Critical paths** ([`critical_path`]): the dependency chain that
//!   bounds a DAG's makespan.
//! * **Engine self-profile** ([`profile`]): simulator wall clock
//!   attributed to window formation / parallel device plane / serial
//!   apply phases.
//!
//! Like `ibis-obs` and `ibis-metrics`, tracing is **zero-cost when off**
//! and non-perturbing: the engine emits the same events whenever a
//! recorder runs, assembly happens after the run, and reports are
//! byte-identical with tracing on or off.

pub mod attribution;
pub mod critical_path;
pub mod profile;
pub mod span;

pub use attribution::{attribute, check, AppAttribution, AttributionCheck, COMPONENTS};
pub use critical_path::{critical_path, CpNode, CriticalPath};
pub use profile::EngineProfile;
pub use span::{build_forest, check_well_formed, JobTree, RequestSpan, SpanForest, TaskSpan};

use ibis_obs::Recording;

/// Relative tolerance for the swept-vs-measured comparison in
/// [`check`]-style invariants: the integers are exact, the tolerance
/// absorbs millisecond-facing float round-trips.
pub const SUM_REL_TOL: f64 = 1e-9;

/// Tracing configuration, carried inside the cluster config.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceConfig {
    /// Assemble span trees and the attribution report after the run.
    /// Off by default; when on with observability off, the engine runs
    /// an internal recorder whose events feed assembly only (the
    /// recording is not published), so results stay byte-identical.
    pub enabled: bool,
}

impl TraceConfig {
    /// Reads the environment: `IBIS_TRACE=1` enables tracing.
    pub fn from_env() -> Self {
        let enabled = std::env::var("IBIS_TRACE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on"))
            .unwrap_or(false);
        TraceConfig { enabled }
    }

    /// An enabled config.
    pub fn on() -> Self {
        TraceConfig { enabled: true }
    }
}

/// The assembled trace: attribution per application plus the span
/// forest. Apps are raw flow ids; consumers with tenant tables (the
/// cluster report carries one) join names on the app id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Per-application latency decomposition, sorted by app id.
    pub per_app: Vec<AppAttribution>,
    /// Per-job span trees.
    pub forest: SpanForest,
}

impl TraceReport {
    /// Assembles attribution and span trees from a finished recording.
    pub fn assemble(rec: &Recording) -> TraceReport {
        TraceReport {
            per_app: attribution::attribute(rec),
            forest: span::build_forest(rec),
        }
    }

    /// The decomposition for one application id.
    pub fn app(&self, app: u32) -> Option<&AppAttribution> {
        self.per_app.iter().find(|a| a.app == app)
    }

    /// Renders the decomposition as Prometheus text-format gauges
    /// (`ibis_latency_component_ms{app="…",component="…"}`), matching
    /// the `ibis-metrics` exposition conventions. `names` maps app ids
    /// to tenant names for an extra `tenant` label; unmapped apps get
    /// the id alone.
    pub fn prometheus(&self, names: &[(u32, &str)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let name_of = |app: u32| names.iter().find(|&&(a, _)| a == app).map(|&(_, n)| n);
        out.push_str("# TYPE ibis_latency_component_ms gauge\n");
        for a in &self.per_app {
            for (i, comp) in COMPONENTS.iter().enumerate() {
                let _ = write!(out, "ibis_latency_component_ms{{app=\"{}\"", a.app);
                if let Some(n) = name_of(a.app) {
                    let _ = write!(out, ",tenant=\"{n}\"");
                }
                let _ = writeln!(
                    out,
                    ",component=\"{comp}\"}} {}",
                    a.components[i] as f64 / 1e6
                );
            }
        }
        out.push_str("# TYPE ibis_latency_measured_ms gauge\n");
        for a in &self.per_app {
            let _ = write!(out, "ibis_latency_measured_ms{{app=\"{}\"", a.app);
            if let Some(n) = name_of(a.app) {
                let _ = write!(out, ",tenant=\"{n}\"");
            }
            let _ = writeln!(out, "}} {}", a.measured_ns as f64 / 1e6);
        }
        out
    }

    /// The decomposition as long-form rows `(metric, app, value)` with
    /// values in milliseconds — the shape the `ibis-metrics` CSV
    /// exporter joins onto its own series.
    pub fn csv_rows(&self) -> Vec<(String, u32, f64)> {
        let mut rows = Vec::with_capacity(self.per_app.len() * (COMPONENTS.len() + 1));
        for a in &self.per_app {
            for (i, comp) in COMPONENTS.iter().enumerate() {
                rows.push((
                    format!("latency_component_ms/{comp}"),
                    a.app,
                    a.components[i] as f64 / 1e6,
                ));
            }
            rows.push((
                "latency_measured_ms".to_string(),
                a.app,
                a.measured_ns as f64 / 1e6,
            ));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_obs::{EventKind, FlightRecorder, ObsEvent, RecordingMeta};
    use ibis_simcore::SimTime;

    fn tiny_recording() -> Recording {
        let mut rec = FlightRecorder::new(1, 64);
        let mut push = |at: u64, kind: EventKind| {
            rec.record(ObsEvent {
                at: SimTime::from_nanos(at),
                node: 0,
                dev: 0,
                kind,
            });
        };
        push(0, EventKind::JobArrived { job: 1, app: 3 });
        push(
            900,
            EventKind::JobCompleted {
                job: 1,
                app: 3,
                latency_ns: 900,
            },
        );
        rec.finish(RecordingMeta::default())
    }

    #[test]
    fn config_default_is_off() {
        assert!(!TraceConfig::default().enabled);
        assert!(TraceConfig::on().enabled);
    }

    #[test]
    fn assemble_exposes_app_lookup_and_exposition() {
        let rep = TraceReport::assemble(&tiny_recording());
        let a = rep.app(3).expect("app present");
        assert_eq!(a.measured_ns, 900);
        assert_eq!(a.swept_ns, a.components_sum_ns());
        let prom = rep.prometheus(&[(3, "etl")]);
        assert!(prom.contains("# TYPE ibis_latency_component_ms gauge"));
        assert!(prom.contains("ibis_latency_component_ms{app=\"3\",tenant=\"etl\",component=\"other\"} 0.0009"));
        let rows = rep.csv_rows();
        assert!(rows.iter().any(|(m, app, v)| {
            m == "latency_measured_ms" && *app == 3 && (*v - 0.0009).abs() < 1e-12
        }));
    }
}
