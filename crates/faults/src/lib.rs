//! Deterministic fault injection for the IBIS cluster engine.
//!
//! The paper's §5 coordination design (DSFQ) is argued to tolerate
//! *imprecise* total-service information. This crate supplies the
//! machinery to demonstrate that claim: a seeded, virtual-time fault
//! schedule that the engine consults at well-defined points (broker
//! syncs, device dispatches, node lifecycle). Every decision is a pure
//! function of the schedule and the injection site — no hidden RNG
//! state — so a fault run replays byte-for-byte regardless of worker
//! count or side-table backend, exactly like the fault-free sweep.
//!
//! Fault kinds (the tentpole's three axes):
//!
//! * **Control plane** — [`Fault::BrokerOutage`] (syncs fail outright),
//!   [`Fault::DelayReplies`] (reports land, replies arrive late), and
//!   [`Fault::DropReports`] (a deterministic 1-in-N subset of per-device
//!   reports is lost in flight).
//! * **Nodes** — [`Fault::NodeCrash`]: a datanode dies at a virtual
//!   time, aborting in-flight I/O and running tasks, optionally
//!   restarting after a delay with cold devices.
//! * **Devices** — [`Fault::DeviceSlowdown`]: a straggler window during
//!   which one device's service times stretch by a factor.
//!
//! Like `ibis-obs` and `ibis-metrics`, the subsystem is zero-cost when
//! disabled: the engine holds no fault state, schedules no events, and
//! produces byte-identical results with the crate compiled in.

use ibis_simcore::{SimDuration, SimTime};

/// One scheduled fault. Times are virtual (simulation) times.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// The scheduling broker is unreachable during `[start, start+duration)`:
    /// reports fail (locals retry with backoff) and no replies arrive.
    BrokerOutage {
        /// Outage onset.
        start: SimTime,
        /// Outage length.
        duration: SimDuration,
    },
    /// Reports reach the broker but replies are delivered `delay` late
    /// during the window — stale totals instead of no totals.
    DelayReplies {
        /// Window onset.
        start: SimTime,
        /// Window length.
        duration: SimDuration,
        /// Added reply latency.
        delay: SimDuration,
    },
    /// During the window, each per-device service report is lost with
    /// probability 1/`one_in`, decided by a deterministic hash of
    /// (schedule seed, node, device, sync index).
    DropReports {
        /// Window onset.
        start: SimTime,
        /// Window length.
        duration: SimDuration,
        /// Drop one report in this many (1 = drop all).
        one_in: u64,
    },
    /// Datanode `node` crashes at `at`: in-flight I/O on its devices is
    /// aborted, running tasks are re-queued, and HDFS reads fail over to
    /// surviving replicas. With `restart_after` set the node rejoins that
    /// much later with cold (rebuilt) devices and schedulers.
    NodeCrash {
        /// The crashing datanode.
        node: u32,
        /// Crash instant.
        at: SimTime,
        /// Rejoin delay; `None` = the node stays dark forever.
        restart_after: Option<SimDuration>,
    },
    /// Device (`node`, `dev`) is a straggler during the window: service
    /// times of requests dispatched inside it stretch by `factor`.
    DeviceSlowdown {
        /// Node owning the device.
        node: u32,
        /// Device index (0 = HDFS, 1 = scratch).
        dev: u8,
        /// Service-time multiplier (> 0; > 1 slows the device down).
        factor: f64,
        /// Window onset.
        start: SimTime,
        /// Window length.
        duration: SimDuration,
    },
}

impl Fault {
    fn check(&self) -> Result<(), String> {
        match self {
            Fault::BrokerOutage { duration, .. }
            | Fault::DelayReplies { duration, .. }
            | Fault::DropReports { duration, .. }
            | Fault::DeviceSlowdown { duration, .. }
                if duration.is_zero() =>
            {
                Err(format!("fault window must have nonzero duration: {self:?}"))
            }
            Fault::DelayReplies { delay, .. } if delay.is_zero() => {
                Err(format!("reply delay must be nonzero: {self:?}"))
            }
            Fault::DropReports { one_in: 0, .. } => {
                Err(format!("drop rate 1-in-0 is meaningless: {self:?}"))
            }
            Fault::DeviceSlowdown { factor, .. } if factor.is_nan() || *factor <= 0.0 => {
                Err(format!("slowdown factor must be positive: {self:?}"))
            }
            _ => Ok(()),
        }
    }
}

/// Is `at` inside `[start, start + duration)`?
fn in_window(at: SimTime, start: SimTime, duration: SimDuration) -> bool {
    at >= start && at.saturating_since(start) < duration
}

/// SplitMix64 finalizer — the deterministic coin used for
/// [`Fault::DropReports`] decisions.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A validated, time-sorted list of faults plus the seed for per-site
/// hash decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    faults: Vec<Fault>,
    /// Seed mixed into drop-report coin flips.
    pub seed: u64,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing).
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            faults: Vec::new(),
            seed,
        }
    }

    /// Adds a fault, panicking on malformed parameters (builder style).
    pub fn push(mut self, fault: Fault) -> Self {
        if let Err(e) = fault.check() {
            panic!("{e}");
        }
        self.faults.push(fault);
        self
    }

    /// Builder: broker outage window.
    pub fn broker_outage(self, start: SimTime, duration: SimDuration) -> Self {
        self.push(Fault::BrokerOutage { start, duration })
    }

    /// Builder: delayed-replies window.
    pub fn delay_replies(self, start: SimTime, duration: SimDuration, delay: SimDuration) -> Self {
        self.push(Fault::DelayReplies {
            start,
            duration,
            delay,
        })
    }

    /// Builder: dropped-reports window.
    pub fn drop_reports(self, start: SimTime, duration: SimDuration, one_in: u64) -> Self {
        self.push(Fault::DropReports {
            start,
            duration,
            one_in,
        })
    }

    /// Builder: node crash (optionally restarting).
    pub fn node_crash(self, node: u32, at: SimTime, restart_after: Option<SimDuration>) -> Self {
        self.push(Fault::NodeCrash {
            node,
            at,
            restart_after,
        })
    }

    /// Builder: device straggler window.
    pub fn device_slowdown(
        self,
        node: u32,
        dev: u8,
        factor: f64,
        start: SimTime,
        duration: SimDuration,
    ) -> Self {
        self.push(Fault::DeviceSlowdown {
            node,
            dev,
            factor,
            start,
            duration,
        })
    }

    /// All scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Is the broker unreachable at `at`?
    pub fn broker_dark(&self, at: SimTime) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::BrokerOutage { start, duration } => in_window(at, *start, *duration),
            _ => false,
        })
    }

    /// Added reply latency at `at` (the longest active window wins), or
    /// `None` when replies are prompt.
    pub fn reply_delay(&self, at: SimTime) -> Option<SimDuration> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::DelayReplies {
                    start,
                    duration,
                    delay,
                } if in_window(at, *start, *duration) => Some(*delay),
                _ => None,
            })
            .max()
    }

    /// Should the report from (`node`, `dev`) at sync number `sync_index`
    /// be dropped? Pure function of the schedule — independent of
    /// evaluation order, worker count, and table backend.
    pub fn drop_report(&self, at: SimTime, node: u32, dev: u8, sync_index: u64) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::DropReports {
                start,
                duration,
                one_in,
            } if in_window(at, *start, *duration) => {
                let h = mix64(
                    self.seed
                        ^ ((node as u64) << 40)
                        ^ ((dev as u64) << 32)
                        ^ sync_index,
                );
                h.is_multiple_of(*one_in)
            }
            _ => false,
        })
    }

    /// Combined service-time stretch for (`node`, `dev`) at `at`
    /// (overlapping windows multiply); `1.0` when healthy.
    pub fn slowdown(&self, at: SimTime, node: u32, dev: u8) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::DeviceSlowdown {
                    node: n,
                    dev: d,
                    factor,
                    start,
                    duration,
                } if *n == node && *d == dev && in_window(at, *start, *duration) => Some(*factor),
                _ => None,
            })
            .product()
    }

    /// True when any device-slowdown fault is scheduled — lets the engine
    /// skip the per-dispatch lookup entirely for schedules without
    /// stragglers.
    pub fn has_slowdowns(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::DeviceSlowdown { .. }))
    }

    /// Crash faults in schedule order (the engine turns these into
    /// crash/restart events at start-up).
    pub fn crashes(&self) -> impl Iterator<Item = (u32, SimTime, Option<SimDuration>)> + '_ {
        self.faults.iter().filter_map(|f| match f {
            Fault::NodeCrash {
                node,
                at,
                restart_after,
            } => Some((*node, *at, *restart_after)),
            _ => None,
        })
    }

    /// Parses the `IBIS_FAULTS` mini-language: a `;`/`,`-separated list
    /// of fault specs (whitespace ignored):
    ///
    /// * `broker@START+DUR` — broker outage
    /// * `delay@START+DUR:LAT` — replies delayed by `LAT`
    /// * `drop@START+DUR:N` — drop 1 report in `N`
    /// * `crash@START:nNODE` — permanent node crash
    /// * `crash@START+RESTART:nNODE` — crash, rejoin `RESTART` later
    /// * `slow@START+DUR:nNODE:dDEV:xFACTOR` — device straggler
    ///
    /// Times/durations take `ns`, `us`, `ms`, `s` or `m` suffixes
    /// (`90s`, `1.5m`, `250ms`); bare numbers are seconds.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut sched = FaultSchedule::new(seed);
        for part in spec.split([';', ',']) {
            let part: String = part.chars().filter(|c| !c.is_whitespace()).collect();
            if part.is_empty() {
                continue;
            }
            let fault = parse_fault(&part)?;
            fault.check()?;
            sched.faults.push(fault);
        }
        Ok(sched)
    }
}

/// Parses a duration like `10s`, `1.5m`, `250ms`, `64us`, `100ns` or a
/// bare number of seconds.
pub fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let (num, scale) = if let Some(v) = s.strip_suffix("ns") {
        (v, 1e-9)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1e-6)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix('m') {
        (v, 60.0)
    } else {
        (s, 1.0)
    };
    let val: f64 = num
        .parse()
        .map_err(|_| format!("bad duration {s:?} (want e.g. 90s, 1.5m, 250ms)"))?;
    if !val.is_finite() || val < 0.0 {
        return Err(format!("duration {s:?} must be finite and non-negative"));
    }
    Ok(SimDuration::from_secs_f64(val * scale))
}

fn parse_time(s: &str) -> Result<SimTime, String> {
    Ok(SimTime::ZERO + parse_duration(s)?)
}

/// Splits `head@START+DUR` / `head@START`, returning (head, start, dur).
fn parse_at(part: &str) -> Result<(&str, SimTime, Option<SimDuration>), String> {
    let (head, when) = part
        .split_once('@')
        .ok_or_else(|| format!("fault spec {part:?} missing '@START'"))?;
    let (start, dur) = match when.split_once('+') {
        Some((s, d)) => (parse_time(s)?, Some(parse_duration(d)?)),
        None => (parse_time(when)?, None),
    };
    Ok((head, start, dur))
}

fn parse_fault(part: &str) -> Result<Fault, String> {
    let mut fields = part.split(':');
    let head = fields.next().unwrap_or("");
    let (kind, start, dur) = parse_at(head)?;
    let rest: Vec<&str> = fields.collect();
    let need_dur =
        || dur.ok_or_else(|| format!("fault spec {part:?} missing '+DURATION'"));
    let field = |prefix: &str| -> Result<&str, String> {
        rest.iter()
            .find_map(|f| f.strip_prefix(prefix))
            .ok_or_else(|| format!("fault spec {part:?} missing '{prefix}…' field"))
    };
    match kind {
        "broker" => Ok(Fault::BrokerOutage {
            start,
            duration: need_dur()?,
        }),
        "delay" => {
            let lat = rest
                .first()
                .ok_or_else(|| format!("fault spec {part:?} missing ':LATENCY'"))?;
            Ok(Fault::DelayReplies {
                start,
                duration: need_dur()?,
                delay: parse_duration(lat)?,
            })
        }
        "drop" => {
            let n = rest
                .first()
                .ok_or_else(|| format!("fault spec {part:?} missing ':N'"))?;
            Ok(Fault::DropReports {
                start,
                duration: need_dur()?,
                one_in: n.parse().map_err(|_| format!("bad drop rate {n:?}"))?,
            })
        }
        "crash" => {
            let node = field("n")?;
            Ok(Fault::NodeCrash {
                node: node.parse().map_err(|_| format!("bad node {node:?}"))?,
                at: start,
                restart_after: dur,
            })
        }
        "slow" => {
            let node = field("n")?;
            let dev = field("d")?;
            let factor = field("x")?;
            Ok(Fault::DeviceSlowdown {
                node: node.parse().map_err(|_| format!("bad node {node:?}"))?,
                dev: dev.parse().map_err(|_| format!("bad device {dev:?}"))?,
                factor: factor.parse().map_err(|_| format!("bad factor {factor:?}"))?,
                start,
                duration: need_dur()?,
            })
        }
        other => Err(format!("unknown fault kind {other:?} in {part:?}")),
    }
}

/// Fault-injection configuration, engine-facing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsConfig {
    /// Master switch. Off ⇒ the engine holds no fault state, schedules no
    /// events, and results are byte-identical to a build without faults.
    pub enabled: bool,
    /// What to inject, and when.
    pub schedule: FaultSchedule,
    /// A local scheduler whose last successful broker sync is older than
    /// this falls back to pure local SFQ(D2) (zero DSFQ delay) until the
    /// broker answers again. §5's graceful-degradation bound.
    pub staleness_bound: SimDuration,
    /// Base backoff for retrying a failed broker report; attempt *k*
    /// waits `retry_backoff · 2^k`.
    pub retry_backoff: SimDuration,
    /// Retry attempts per failed sync before giving up until the next
    /// regular sync tick.
    pub retry_limit: u32,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            enabled: false,
            schedule: FaultSchedule::default(),
            staleness_bound: SimDuration::from_secs(3),
            retry_backoff: SimDuration::from_millis(100),
            retry_limit: 3,
        }
    }
}

impl FaultsConfig {
    /// Reads the environment:
    ///
    /// * `IBIS_FAULTS` — unset/`0` disables; `1` enables with an empty
    ///   schedule (armed but inert); anything else is parsed by
    ///   [`FaultSchedule::parse`].
    /// * `IBIS_FAULTS_SEED` — schedule seed (default 0xFA17).
    /// * `IBIS_FAULTS_STALENESS` — staleness bound (duration syntax).
    /// * `IBIS_FAULTS_RETRY` — base retry backoff (duration syntax).
    /// * `IBIS_FAULTS_RETRY_LIMIT` — retry attempts per failed sync.
    ///
    /// Malformed values panic: a chaos run silently falling back to
    /// fault-free would invalidate the experiment.
    pub fn from_env() -> Self {
        let mut cfg = FaultsConfig::default();
        let seed = match std::env::var("IBIS_FAULTS_SEED") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("bad IBIS_FAULTS_SEED {v:?}")),
            Err(_) => 0xFA17,
        };
        cfg.schedule.seed = seed;
        match std::env::var("IBIS_FAULTS") {
            Ok(v) if v == "0" || v.is_empty() => {}
            Ok(v) if v == "1" => cfg.enabled = true,
            Ok(v) => {
                cfg.schedule = FaultSchedule::parse(&v, seed)
                    .unwrap_or_else(|e| panic!("bad IBIS_FAULTS: {e}"));
                cfg.enabled = true;
            }
            Err(_) => {}
        }
        if let Ok(v) = std::env::var("IBIS_FAULTS_STALENESS") {
            cfg.staleness_bound =
                parse_duration(&v).unwrap_or_else(|e| panic!("bad IBIS_FAULTS_STALENESS: {e}"));
        }
        if let Ok(v) = std::env::var("IBIS_FAULTS_RETRY") {
            cfg.retry_backoff =
                parse_duration(&v).unwrap_or_else(|e| panic!("bad IBIS_FAULTS_RETRY: {e}"));
        }
        if let Ok(v) = std::env::var("IBIS_FAULTS_RETRY_LIMIT") {
            cfg.retry_limit = v
                .parse()
                .unwrap_or_else(|_| panic!("bad IBIS_FAULTS_RETRY_LIMIT {v:?}"));
        }
        cfg
    }

    /// True when faults are armed *and* something is scheduled — the
    /// engine's gate for building fault state.
    pub fn active(&self) -> bool {
        self.enabled && !self.schedule.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn windows_are_half_open() {
        let s = FaultSchedule::new(1).broker_outage(t(10), SimDuration::from_secs(5));
        assert!(!s.broker_dark(t(9)));
        assert!(s.broker_dark(t(10)));
        assert!(s.broker_dark(t(14)));
        assert!(!s.broker_dark(t(15)));
    }

    #[test]
    fn reply_delay_takes_longest_active_window() {
        let s = FaultSchedule::new(1)
            .delay_replies(t(0), SimDuration::from_secs(20), SimDuration::from_millis(200))
            .delay_replies(t(5), SimDuration::from_secs(5), SimDuration::from_millis(700));
        assert_eq!(s.reply_delay(t(2)), Some(SimDuration::from_millis(200)));
        assert_eq!(s.reply_delay(t(6)), Some(SimDuration::from_millis(700)));
        assert_eq!(s.reply_delay(t(30)), None);
    }

    #[test]
    fn drop_decisions_deterministic_and_seed_sensitive() {
        let mk = |seed| FaultSchedule::new(seed).drop_reports(t(0), SimDuration::from_secs(100), 3);
        let a = mk(7);
        let b = mk(7);
        let c = mk(8);
        let sites: Vec<bool> = (0..64)
            .map(|i| a.drop_report(t(1), i % 8, (i % 2) as u8, i as u64))
            .collect();
        let again: Vec<bool> = (0..64)
            .map(|i| b.drop_report(t(1), i % 8, (i % 2) as u8, i as u64))
            .collect();
        assert_eq!(sites, again, "same seed ⇒ same decisions");
        let other: Vec<bool> = (0..64)
            .map(|i| c.drop_report(t(1), i % 8, (i % 2) as u8, i as u64))
            .collect();
        assert_ne!(sites, other, "different seed ⇒ different coin flips");
        let dropped = sites.iter().filter(|&&d| d).count();
        assert!(dropped > 0 && dropped < 64, "1-in-3 should be partial: {dropped}");
    }

    #[test]
    fn drop_all_when_one_in_one() {
        let s = FaultSchedule::new(9).drop_reports(t(0), SimDuration::from_secs(10), 1);
        assert!(s.drop_report(t(5), 3, 0, 42));
        assert!(!s.drop_report(t(15), 3, 0, 42), "outside the window");
    }

    #[test]
    fn slowdowns_multiply_and_filter_by_site() {
        let s = FaultSchedule::new(1)
            .device_slowdown(2, 0, 4.0, t(10), SimDuration::from_secs(10))
            .device_slowdown(2, 0, 2.0, t(15), SimDuration::from_secs(10));
        assert_eq!(s.slowdown(t(5), 2, 0), 1.0);
        assert_eq!(s.slowdown(t(12), 2, 0), 4.0);
        assert_eq!(s.slowdown(t(17), 2, 0), 8.0);
        assert_eq!(s.slowdown(t(22), 2, 0), 2.0);
        assert_eq!(s.slowdown(t(12), 2, 1), 1.0, "other device unaffected");
        assert_eq!(s.slowdown(t(12), 3, 0), 1.0, "other node unaffected");
        assert!(s.has_slowdowns());
        assert!(!FaultSchedule::new(1).has_slowdowns());
    }

    #[test]
    fn parse_round_trip() {
        let spec = "broker@20s+10s; delay@5s+10s:250ms; drop@0+1m:3; \
                    crash@30s:n2; crash@40s+15s:n5; slow@10s+30s:n1:d0:x4.5";
        let s = FaultSchedule::parse(spec, 0xFA17).expect("parse");
        assert_eq!(
            s.faults(),
            &[
                Fault::BrokerOutage {
                    start: t(20),
                    duration: SimDuration::from_secs(10)
                },
                Fault::DelayReplies {
                    start: t(5),
                    duration: SimDuration::from_secs(10),
                    delay: SimDuration::from_millis(250)
                },
                Fault::DropReports {
                    start: t(0),
                    duration: SimDuration::from_secs(60),
                    one_in: 3
                },
                Fault::NodeCrash {
                    node: 2,
                    at: t(30),
                    restart_after: None
                },
                Fault::NodeCrash {
                    node: 5,
                    at: t(40),
                    restart_after: Some(SimDuration::from_secs(15))
                },
                Fault::DeviceSlowdown {
                    node: 1,
                    dev: 0,
                    factor: 4.5,
                    start: t(10),
                    duration: SimDuration::from_secs(30)
                },
            ]
        );
        let crashes: Vec<_> = s.crashes().collect();
        assert_eq!(crashes.len(), 2);
        assert_eq!(crashes[0], (2, t(30), None));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "broker@20s",            // missing duration
            "delay@5s+10s",          // missing latency
            "drop@0+1m:0",           // 1-in-0
            "crash:n2",              // missing @START
            "slow@10s+30s:n1:d0",    // missing factor
            "slow@10s+30s:n1:d0:x0", // zero factor
            "flood@0+1s",            // unknown kind
            "broker@abc+1s",         // bad number
        ] {
            assert!(
                FaultSchedule::parse(bad, 1).is_err(),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn duration_suffixes() {
        assert_eq!(parse_duration("90s").unwrap(), SimDuration::from_secs(90));
        assert_eq!(parse_duration("1.5m").unwrap(), SimDuration::from_secs(90));
        assert_eq!(parse_duration("250ms").unwrap(), SimDuration::from_millis(250));
        assert_eq!(parse_duration("64us").unwrap(), SimDuration::from_micros(64));
        assert_eq!(parse_duration("100ns").unwrap(), SimDuration::from_nanos(100));
        assert_eq!(parse_duration("5").unwrap(), SimDuration::from_secs(5));
        assert!(parse_duration("-1s").is_err());
        assert!(parse_duration("nan").is_err());
    }

    #[test]
    fn default_config_is_inert() {
        let cfg = FaultsConfig::default();
        assert!(!cfg.enabled);
        assert!(!cfg.active());
        let armed = FaultsConfig {
            enabled: true,
            ..FaultsConfig::default()
        };
        assert!(!armed.active(), "armed but empty schedule stays inert");
    }
}
