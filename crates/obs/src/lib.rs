//! `ibis-obs` — flight-recorder tracing, fairness auditing, and trace
//! export for the IBIS reproduction.
//!
//! The paper's claims are statements about *streams* of scheduling
//! decisions: SFQ dispatches in start-tag order (§4), backlogged
//! applications split service in weight proportion at any instant
//! (Fig. 6/11), and DSFQ's delay rule charges exactly the foreign service
//! the broker reported (§5, Fig. 12). End-of-run aggregates can only show
//! that a run *ended* fair; this crate records the stream itself so those
//! claims become replayable, machine-checkable invariants.
//!
//! Three layers:
//!
//! * **Events** ([`event`]) — a typed vocabulary (`RequestTagged`,
//!   `DelayApplied`, `Dispatched`, `Completed`, `DepthAdjusted`,
//!   `BrokerSync`, `BlockPlaced`) plus [`EventBuf`], the per-emitter
//!   buffer embedded in schedulers and the namenode. Disabled, an
//!   emission is one predictable branch — the recorder is off by default
//!   and sweep results stay byte-identical.
//! * **Recorder** ([`recorder`]) — the cluster engine stamps each event
//!   with `(time, node, device)` and feeds a [`FlightRecorder`]: one
//!   bounded ring per node, oldest-evicted, so memory is
//!   `nodes × capacity × 48 B` no matter how long the run. Finishing
//!   yields an immutable [`Recording`].
//! * **Consumers** — the fairness auditor ([`audit`]) replays a recording
//!   and checks start-tag monotonicity, windowed proportional share, and
//!   the DSFQ delay identity; the Chrome exporter ([`chrome`]) renders
//!   per-app request lanes with depth/broker counter tracks for
//!   `chrome://tracing` / Perfetto.
//!
//! Enable recording for any experiment binary with `IBIS_OBS=1`
//! (capacity override: `IBIS_OBS_CAP=<events per node>`), or
//! programmatically via [`ObsConfig::enabled`].

#![warn(missing_docs)]

pub mod audit;
pub mod chrome;
pub mod event;
pub mod recorder;

pub use audit::{audit, AuditConfig, AuditReport, Invariant, Violation};
pub use event::{EventBuf, EventKind, ObsEvent};
pub use recorder::{FlightRecorder, ObsConfig, Recording, RecordingMeta};
