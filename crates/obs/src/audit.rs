//! The fairness auditor: replays a [`Recording`] and checks the paper's
//! scheduling claims as machine-verifiable invariants.
//!
//! Three invariants are audited, per `(node, device)` stream:
//!
//! 1. **Start-tag monotonicity** — SFQ dispatches the minimum-start-tag
//!    queued request and sets the virtual time to it, so the sequence of
//!    dispatched start tags must be non-decreasing. A regression in the
//!    tag math or heap ordering shows up here immediately.
//! 2. **Windowed proportional share** (§4, Fig. 6/11) — within each time
//!    window, applications that stayed *continuously backlogged* (always
//!    had at least one queued request) must split the completed bytes of
//!    the backlogged set in proportion to their weights, within
//!    [`AuditConfig::share_tolerance`].
//! 3. **DSFQ delay identity** (§5, Fig. 12) — the cumulative delay the
//!    DSFQ rule charges a flow can never exceed the foreign service the
//!    broker reported for it: `Σ delay ≤ max_sync(total − local
//!    completed)`. Overcharging would mean local arrivals are penalised
//!    for service that never happened elsewhere.
//! 4. **Degraded pure-local** (fault injection) — between a
//!    [`EventKind::DegradedEnter`] and its matching
//!    [`EventKind::DegradedExit`], a scheduler has declared its broker
//!    totals stale and fallen back to pure local SFQ(D2); charging any
//!    DSFQ delay in that span would penalise flows against information
//!    the scheduler itself deemed untrustworthy. Local-share fairness
//!    (check 2) keeps running across degraded windows, so a dark broker
//!    cannot silently break per-device fairness either.
//!
//! Nodes whose ring evicted events ([`Recording::truncated`]) get only the
//! first check — the other two reconstruct cumulative state and would
//! false-positive on an incomplete prefix.

use crate::event::{EventKind, ObsEvent};
use crate::recorder::Recording;
use ibis_simcore::metrics::Cdf;
use ibis_simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Auditor tuning knobs.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Proportional-share window length.
    pub window: SimDuration,
    /// Maximum absolute error between an application's byte share and its
    /// weight share within one window. SFQ(D)'s per-window unfairness is
    /// bounded by `D` maximum-size requests per flow boundary, so the
    /// bound loosens with short windows and deep queues.
    pub share_tolerance: f64,
    /// Windows whose backlogged set completed fewer bytes than this are
    /// skipped (too little service for the share to be meaningful).
    pub min_window_bytes: u64,
    /// Cap on recorded violations (the counts keep accumulating).
    pub max_violations: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            window: SimDuration::from_secs(10),
            share_tolerance: 0.15,
            min_window_bytes: 128 << 20,
            max_violations: 20,
        }
    }
}

/// Which invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Dispatched start tags regressed.
    StartTagMonotone,
    /// A window's byte shares deviated from the weight shares.
    ProportionalShare,
    /// Cumulative DSFQ delay exceeded broker-reported foreign service.
    DelayIdentity,
    /// A DSFQ delay was charged inside a degraded (stale-broker) episode.
    DegradedPureLocal,
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Invariant::StartTagMonotone => "start-tag-monotone",
            Invariant::ProportionalShare => "proportional-share",
            Invariant::DelayIdentity => "dsfq-delay-identity",
            Invariant::DegradedPureLocal => "degraded-pure-local",
        };
        f.write_str(s)
    }
}

/// One invariant violation, pinned to its origin.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The broken invariant.
    pub invariant: Invariant,
    /// Node of the offending stream.
    pub node: u32,
    /// Device index of the offending stream.
    pub dev: u8,
    /// When it happened (window end for share violations).
    pub at: SimTime,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] node{} dev{} at {}: {}",
            self.invariant, self.node, self.dev, self.at, self.detail
        )
    }
}

/// The auditor's verdict plus the evidence behind it.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Events replayed.
    pub events: u64,
    /// Dispatches checked for start-tag monotonicity.
    pub dispatches: u64,
    /// Windows in which a proportional-share comparison ran.
    pub windows_checked: u64,
    /// DSFQ delay charges checked against broker totals.
    pub delay_checks: u64,
    /// Degraded-mode boundary events (enter + exit) replayed — the
    /// denominator for the degraded pure-local check; 0 means the run
    /// never degraded and the invariant was vacuously satisfied.
    pub degraded_marks: u64,
    /// Absolute share errors across all checked windows (merged from the
    /// per-node distributions with [`Cdf::merge`]).
    pub share_errors: Cdf,
    /// Nodes skipped for checks 2–3 because their ring evicted events.
    pub truncated_nodes: Vec<u32>,
    /// Violations found (capped at [`AuditConfig::max_violations`]).
    pub violations: Vec<Violation>,
    /// Total violations observed, including beyond the cap.
    pub violation_count: u64,
    /// Start-tag monotonicity violations, uncapped.
    pub start_tag_violations: u64,
    /// Proportional-share violations, uncapped.
    pub share_violations: u64,
    /// DSFQ delay-identity violations, uncapped.
    pub delay_violations: u64,
    /// Degraded pure-local violations, uncapped.
    pub degraded_violations: u64,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn passed(&self) -> bool {
        self.violation_count == 0
    }

    /// Total violations of one invariant, uncapped (unlike
    /// [`AuditReport::violations`], which stops recording at the cap).
    pub fn violations_of(&self, invariant: Invariant) -> u64 {
        match invariant {
            Invariant::StartTagMonotone => self.start_tag_violations,
            Invariant::ProportionalShare => self.share_violations,
            Invariant::DelayIdentity => self.delay_violations,
            Invariant::DegradedPureLocal => self.degraded_violations,
        }
    }

    /// One-line human summary.
    pub fn summary(&mut self) -> String {
        let p99 = self.share_errors.quantile(0.99).unwrap_or(0.0);
        let max = self.share_errors.quantile(1.0).unwrap_or(0.0);
        format!(
            "{}: {} events, {} dispatches monotone-checked, {} windows \
             (share err p99 {:.3}, max {:.3}), {} delay checks, {} truncated \
             node(s), {} violation(s)",
            if self.passed() { "PASS" } else { "FAIL" },
            self.events,
            self.dispatches,
            self.windows_checked,
            p99,
            max,
            self.delay_checks,
            self.truncated_nodes.len(),
            self.violation_count,
        )
    }
}

/// Per-flow reconstruction state within one `(node, dev)` stream.
#[derive(Debug, Clone)]
struct FlowAcc {
    app: u32,
    weight: f64,
    /// Requests tagged but not yet dispatched (the scheduler queue).
    queued: i64,
    /// Minimum queue length seen in the current window (sampled at every
    /// event; queues only change at events, so this is exact).
    min_queued: i64,
    /// Completed bytes in the current window.
    win_bytes: u64,
    /// Completed bytes, cumulative (mirrors the scheduler's
    /// `local_service`).
    completed: u64,
    /// Cumulative DSFQ delay charged.
    delays: u64,
    /// Max over syncs of `total − completed` (mirrors `foreign_total`).
    foreign_known: u64,
}

/// Per-`(node, dev)` reconstruction state.
#[derive(Debug, Clone, Default)]
struct DevAcc {
    last_start: f64,
    flows: Vec<FlowAcc>,
    /// Index of the last flushed window.
    window: u64,
    /// Inside a DegradedEnter..DegradedExit span (stale broker totals;
    /// DSFQ delays must be zero).
    degraded: bool,
}

impl DevAcc {
    fn flow(&mut self, app: u32, weight: f64) -> &mut FlowAcc {
        if let Some(i) = self.flows.iter().position(|f| f.app == app) {
            return &mut self.flows[i];
        }
        self.flows.push(FlowAcc {
            app,
            weight,
            queued: 0,
            min_queued: 0,
            win_bytes: 0,
            completed: 0,
            delays: 0,
            foreign_known: 0,
        });
        self.flows.last_mut().expect("just pushed")
    }
}

struct Auditor<'a> {
    cfg: &'a AuditConfig,
    report: AuditReport,
    /// Share-error samples per node, merged at the end.
    node_errors: BTreeMap<u32, Cdf>,
}

impl Auditor<'_> {
    fn violate(&mut self, invariant: Invariant, node: u32, dev: u8, at: SimTime, detail: String) {
        self.report.violation_count += 1;
        match invariant {
            Invariant::StartTagMonotone => self.report.start_tag_violations += 1,
            Invariant::ProportionalShare => self.report.share_violations += 1,
            Invariant::DelayIdentity => self.report.delay_violations += 1,
            Invariant::DegradedPureLocal => self.report.degraded_violations += 1,
        }
        if self.report.violations.len() < self.cfg.max_violations {
            self.report.violations.push(Violation {
                invariant,
                node,
                dev,
                at,
                detail,
            });
        }
    }

    /// Closes the current window of `acc`: runs the proportional-share
    /// comparison over the continuously backlogged set, then resets the
    /// per-window accumulators.
    fn flush_window(&mut self, acc: &mut DevAcc, node: u32, dev: u8, window_end: SimTime) {
        let backlogged: Vec<usize> = (0..acc.flows.len())
            .filter(|&i| acc.flows[i].min_queued > 0)
            .collect();
        if backlogged.len() >= 2 {
            let total: u64 = backlogged.iter().map(|&i| acc.flows[i].win_bytes).sum();
            if total >= self.cfg.min_window_bytes {
                let wsum: f64 = backlogged.iter().map(|&i| acc.flows[i].weight).sum();
                self.report.windows_checked += 1;
                for &i in &backlogged {
                    let f = &acc.flows[i];
                    let share = f.win_bytes as f64 / total as f64;
                    let expect = f.weight / wsum;
                    let err = (share - expect).abs();
                    self.node_errors.entry(node).or_default().add(err);
                    if err > self.cfg.share_tolerance {
                        let (app, weight) = (f.app, f.weight);
                        self.violate(
                            Invariant::ProportionalShare,
                            node,
                            dev,
                            window_end,
                            format!(
                                "app{app} got share {share:.3} of {total} B, expected \
                                 {expect:.3} (weight {weight}) — err {err:.3}"
                            ),
                        );
                    }
                }
            }
        }
        for f in &mut acc.flows {
            f.win_bytes = 0;
            f.min_queued = f.queued;
        }
    }
}

/// Replays `rec` and checks every invariant. See the module docs.
pub fn audit(rec: &Recording, cfg: &AuditConfig) -> AuditReport {
    let window_ns = cfg.window.as_nanos().max(1);
    let mut aud = Auditor {
        cfg,
        report: AuditReport {
            events: rec.len() as u64,
            ..AuditReport::default()
        },
        node_errors: BTreeMap::new(),
    };
    for n in 0..rec.meta.nodes {
        if rec.truncated(n) {
            aud.report.truncated_nodes.push(n);
        }
    }

    let mut streams: BTreeMap<(u32, u8), DevAcc> = BTreeMap::new();
    for ev in rec.events() {
        let ObsEvent { at, node, dev, kind } = *ev;
        let truncated = rec.truncated(node);
        let mut acc = streams.remove(&(node, dev)).unwrap_or_default();

        // Cross a window boundary: flush state-dependent checks first.
        // Windows between events carry zero completed bytes, so one flush
        // of the window the last event lived in covers the whole gap (the
        // share check skips empty windows via min_window_bytes).
        let widx = at.as_nanos() / window_ns;
        if widx > acc.window {
            if !truncated {
                let end = SimTime::from_nanos((acc.window + 1) * window_ns);
                aud.flush_window(&mut acc, node, dev, end);
            }
            acc.window = widx;
        }

        match kind {
            EventKind::RequestTagged { app, .. } => {
                let w = rec.meta.weight_of(app);
                let f = acc.flow(app, w);
                f.queued += 1;
            }
            EventKind::Dispatched { app, start_tag, .. } => {
                aud.report.dispatches += 1;
                if start_tag < acc.last_start {
                    let last = acc.last_start;
                    aud.violate(
                        Invariant::StartTagMonotone,
                        node,
                        dev,
                        at,
                        format!("dispatched start tag {start_tag} after {last}"),
                    );
                }
                acc.last_start = start_tag;
                let w = rec.meta.weight_of(app);
                let f = acc.flow(app, w);
                f.queued -= 1;
                f.min_queued = f.min_queued.min(f.queued);
            }
            EventKind::Completed { app, bytes, .. } => {
                let w = rec.meta.weight_of(app);
                let f = acc.flow(app, w);
                f.win_bytes += bytes;
                f.completed += bytes;
            }
            EventKind::DelayApplied { app, delay } => {
                if acc.degraded {
                    aud.violate(
                        Invariant::DegradedPureLocal,
                        node,
                        dev,
                        at,
                        format!(
                            "app{app} charged {delay} B of DSFQ delay while the \
                             scheduler was degraded (broker totals stale)"
                        ),
                    );
                }
                if !truncated {
                    let w = rec.meta.weight_of(app);
                    let f = acc.flow(app, w);
                    f.delays += delay;
                    aud.report.delay_checks += 1;
                    if f.delays > f.foreign_known {
                        let (delays, known) = (f.delays, f.foreign_known);
                        aud.violate(
                            Invariant::DelayIdentity,
                            node,
                            dev,
                            at,
                            format!(
                                "app{app} charged {delays} B of delay, broker only \
                                 reported {known} B foreign"
                            ),
                        );
                    }
                }
            }
            EventKind::BrokerSync { app, total } => {
                let w = rec.meta.weight_of(app);
                let f = acc.flow(app, w);
                f.foreign_known = f.foreign_known.max(total.saturating_sub(f.completed));
            }
            EventKind::DegradedEnter { .. } => {
                aud.report.degraded_marks += 1;
                acc.degraded = true;
            }
            EventKind::DegradedExit { .. } => {
                aud.report.degraded_marks += 1;
                acc.degraded = false;
            }
            EventKind::DepthAdjusted { .. }
            | EventKind::BlockPlaced { .. }
            | EventKind::FaultInjected { .. }
            | EventKind::JobArrived { .. }
            | EventKind::JobCompleted { .. }
            | EventKind::IoQueued { .. }
            | EventKind::TaskStarted { .. }
            | EventKind::TaskFinished { .. }
            | EventKind::ReportRetry { .. } => {}
        }
        streams.insert((node, dev), acc);
    }

    // Final partial windows are *not* flushed: a cut-off window biases the
    // share comparison. Merge the per-node error distributions.
    let node_errors = std::mem::take(&mut aud.node_errors);
    for (_, cdf) in node_errors {
        aud.report.share_errors.merge(&cdf);
    }
    aud.report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, RecordingMeta};

    fn meta(weights: &[(u32, f64)]) -> RecordingMeta {
        RecordingMeta {
            weights: weights.to_vec(),
            sync_period_ns: 1_000_000_000,
            nodes: 1,
        }
    }

    fn push(rec: &mut FlightRecorder, at_ns: u64, kind: EventKind) {
        rec.record(ObsEvent {
            at: SimTime::from_nanos(at_ns),
            node: 0,
            dev: 0,
            kind,
        });
    }

    /// Synthesises two flows backlogged through window 1 (10–20 s), where
    /// flow 1 is serviced `b1` bytes and flow 2 `b2`. Tagging happens in
    /// window 0 so both flows enter window 1 with deep queues — a flow is
    /// "continuously backlogged" only in windows it starts queued.
    fn two_flow_recording(w1: f64, w2: f64, b1: u64, b2: u64) -> Recording {
        let mut rec = FlightRecorder::new(1, 1 << 14);
        let sec = 1_000_000_000u64;
        let chunk = 1u64 << 20;
        // Queue up more requests than either flow will be serviced.
        for i in 0..512 {
            push(&mut rec, 0, EventKind::RequestTagged {
                io: i, app: 1, bytes: chunk, write: false, start_tag: 0.0,
            });
            push(&mut rec, 0, EventKind::RequestTagged {
                io: 1000 + i, app: 2, bytes: chunk, write: false, start_tag: 0.0,
            });
        }
        let mut tag = 0.0f64;
        let mut t = 10 * sec;
        let (n1, n2) = (b1 / chunk, b2 / chunk);
        assert!(n1.max(n2) < 512);
        for i in 0..n1.max(n2) {
            if i < n1 {
                push(&mut rec, t, EventKind::Dispatched { io: i, app: 1, start_tag: tag });
                push(&mut rec, t, EventKind::Completed {
                    io: i, app: 1, bytes: chunk, write: false, latency_ns: 1000,
                });
            }
            if i < n2 {
                push(&mut rec, t, EventKind::Dispatched { io: 1000 + i, app: 2, start_tag: tag });
                push(&mut rec, t, EventKind::Completed {
                    io: 1000 + i, app: 2, bytes: chunk, write: false, latency_ns: 1000,
                });
            }
            tag += 1.0;
            t += sec / 128; // ≤ 512 steps stays inside window 1
        }
        // An event in window 2 forces the window-1 flush.
        push(&mut rec, 21 * sec, EventKind::DepthAdjusted { depth: 4 });
        rec.finish(meta(&[(1, w1), (2, w2)]))
    }

    #[test]
    fn fair_window_passes() {
        // 3:1 weights, 3:1 bytes → zero share error.
        let r = two_flow_recording(3.0, 1.0, 192 << 20, 64 << 20);
        let mut rep = audit(&r, &AuditConfig::default());
        assert!(rep.passed(), "{}", rep.summary());
        assert_eq!(rep.windows_checked, 1);
        assert!(rep.share_errors.quantile(1.0).unwrap() < 1e-9);
    }

    #[test]
    fn unfair_window_flagged() {
        // 3:1 weights but equal service → share error 0.25 > tolerance.
        let r = two_flow_recording(3.0, 1.0, 128 << 20, 128 << 20);
        let rep = audit(&r, &AuditConfig::default());
        assert!(!rep.passed());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::ProportionalShare));
    }

    #[test]
    fn tiny_windows_are_skipped() {
        // Unfair but far below min_window_bytes → no check, no violation.
        let r = two_flow_recording(3.0, 1.0, 4 << 20, 4 << 20);
        let rep = audit(&r, &AuditConfig::default());
        assert!(rep.passed());
        assert_eq!(rep.windows_checked, 0);
    }

    #[test]
    fn start_tag_regression_flagged() {
        let mut rec = FlightRecorder::new(1, 64);
        push(&mut rec, 0, EventKind::Dispatched { io: 0, app: 1, start_tag: 5.0 });
        push(&mut rec, 1, EventKind::Dispatched { io: 1, app: 1, start_tag: 4.0 });
        let rep = audit(&rec.finish(meta(&[(1, 1.0)])), &AuditConfig::default());
        assert_eq!(rep.violation_count, 1);
        assert_eq!(rep.violations[0].invariant, Invariant::StartTagMonotone);
        assert_eq!(rep.violations_of(Invariant::StartTagMonotone), 1);
        assert_eq!(rep.violations_of(Invariant::ProportionalShare), 0);
        assert_eq!(rep.violations_of(Invariant::DelayIdentity), 0);
    }

    #[test]
    fn per_invariant_counts_are_uncapped() {
        // 30 regressions with the default cap of 20: the recorded list is
        // capped, the per-invariant count is not.
        let mut rec = FlightRecorder::new(1, 256);
        for i in 0..31u64 {
            // Alternate 5.0, 4.0, 5.0, … — every 4.0 after a 5.0 regresses.
            let tag = if i % 2 == 0 { 5.0 } else { 4.0 };
            push(&mut rec, i, EventKind::Dispatched { io: i, app: 1, start_tag: tag });
        }
        let rep = audit(&rec.finish(meta(&[(1, 1.0)])), &AuditConfig::default());
        assert_eq!(rep.violations_of(Invariant::StartTagMonotone), 15);
        assert_eq!(rep.violation_count, 15);
        assert_eq!(rep.violations.len(), 15);
    }

    #[test]
    fn equal_start_tags_allowed() {
        let mut rec = FlightRecorder::new(1, 64);
        for i in 0..3 {
            push(&mut rec, i, EventKind::Dispatched { io: i, app: 1, start_tag: 7.0 });
        }
        let rep = audit(&rec.finish(meta(&[(1, 1.0)])), &AuditConfig::default());
        assert!(rep.passed());
        assert_eq!(rep.dispatches, 3);
    }

    #[test]
    fn delay_within_broker_total_passes() {
        let mut rec = FlightRecorder::new(1, 64);
        push(&mut rec, 0, EventKind::Completed { io: 0, app: 1, bytes: 100, write: false, latency_ns: 1 });
        push(&mut rec, 1, EventKind::BrokerSync { app: 1, total: 600 });
        // foreign = 600 − 100 = 500; charging 500 is legal…
        push(&mut rec, 2, EventKind::DelayApplied { app: 1, delay: 500 });
        let rep = audit(&rec.finish(meta(&[(1, 1.0)])), &AuditConfig::default());
        assert!(rep.passed());
        assert_eq!(rep.delay_checks, 1);
    }

    #[test]
    fn overcharged_delay_flagged() {
        let mut rec = FlightRecorder::new(1, 64);
        push(&mut rec, 0, EventKind::Completed { io: 0, app: 1, bytes: 100, write: false, latency_ns: 1 });
        push(&mut rec, 1, EventKind::BrokerSync { app: 1, total: 600 });
        // …but 501 exceeds the foreign service the broker reported.
        push(&mut rec, 2, EventKind::DelayApplied { app: 1, delay: 501 });
        let rep = audit(&rec.finish(meta(&[(1, 1.0)])), &AuditConfig::default());
        assert!(!rep.passed());
        assert_eq!(rep.violations[0].invariant, Invariant::DelayIdentity);
    }

    #[test]
    fn truncated_node_skips_stateful_checks() {
        let mut rec = FlightRecorder::new(1, 2);
        // Overflow the 2-slot ring so node 0 is truncated, ending on an
        // uncovered delay charge that would otherwise be a violation.
        push(&mut rec, 0, EventKind::Completed { io: 0, app: 1, bytes: 1, write: false, latency_ns: 1 });
        push(&mut rec, 1, EventKind::Completed { io: 1, app: 1, bytes: 1, write: false, latency_ns: 1 });
        push(&mut rec, 2, EventKind::DelayApplied { app: 1, delay: 999 });
        push(&mut rec, 3, EventKind::DelayApplied { app: 1, delay: 999 });
        let rep = audit(&rec.finish(meta(&[(1, 1.0)])), &AuditConfig::default());
        assert!(rep.passed());
        assert_eq!(rep.truncated_nodes, vec![0]);
        assert_eq!(rep.delay_checks, 0);
    }

    #[test]
    fn delay_inside_degraded_span_flagged() {
        let mut rec = FlightRecorder::new(1, 64);
        push(&mut rec, 0, EventKind::BrokerSync { app: 1, total: 600 });
        push(&mut rec, 1, EventKind::DegradedEnter { age_ns: 4_000_000_000 });
        // Legal by the delay identity (broker reported 600 foreign), but
        // the scheduler had declared its totals stale.
        push(&mut rec, 2, EventKind::DelayApplied { app: 1, delay: 100 });
        push(&mut rec, 3, EventKind::DegradedExit { dark_ns: 2_000_000_000 });
        let rep = audit(&rec.finish(meta(&[(1, 1.0)])), &AuditConfig::default());
        assert!(!rep.passed());
        assert_eq!(rep.violations_of(Invariant::DegradedPureLocal), 1);
        assert_eq!(rep.degraded_marks, 2);
    }

    #[test]
    fn delay_outside_degraded_span_passes() {
        let mut rec = FlightRecorder::new(1, 64);
        push(&mut rec, 0, EventKind::BrokerSync { app: 1, total: 600 });
        push(&mut rec, 1, EventKind::DegradedEnter { age_ns: u64::MAX });
        push(&mut rec, 2, EventKind::DegradedExit { dark_ns: 1 });
        // Delay after recovery is fine.
        push(&mut rec, 3, EventKind::DelayApplied { app: 1, delay: 100 });
        let rep = audit(&rec.finish(meta(&[(1, 1.0)])), &AuditConfig::default());
        assert!(rep.passed(), "delay after DegradedExit must be legal");
        assert_eq!(rep.degraded_marks, 2);
        assert_eq!(rep.violations_of(Invariant::DegradedPureLocal), 0);
    }

    #[test]
    fn fault_markers_are_inert_for_other_checks() {
        let mut rec = FlightRecorder::new(1, 64);
        push(&mut rec, 0, EventKind::FaultInjected { kind: 0, detail: 7 });
        push(&mut rec, 1, EventKind::ReportRetry { attempt: 2 });
        push(&mut rec, 2, EventKind::Dispatched { io: 0, app: 1, start_tag: 1.0 });
        let rep = audit(&rec.finish(meta(&[(1, 1.0)])), &AuditConfig::default());
        assert!(rep.passed());
        assert_eq!(rep.dispatches, 1);
        assert_eq!(rep.degraded_marks, 0);
    }

    #[test]
    fn empty_recording_passes() {
        let rec = FlightRecorder::new(4, 8).finish(RecordingMeta::default());
        let mut rep = audit(&rec, &AuditConfig::default());
        assert!(rep.passed());
        assert!(rep.summary().starts_with("PASS"));
    }
}
