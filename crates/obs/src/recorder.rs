//! The flight recorder: bounded per-node ring buffers of [`ObsEvent`]s.
//!
//! Memory is bounded by `nodes × capacity × sizeof(ObsEvent)`; when a
//! node's ring is full the oldest event is dropped and counted, so a long
//! run keeps its most recent history (the "flight recorder" contract).
//! Finishing a recorder yields an immutable [`Recording`] — the input to
//! the fairness auditor and the trace exporters.

use crate::event::ObsEvent;
use std::collections::VecDeque;

/// Recorder configuration, carried inside the cluster config.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Record events at all. Off by default: the disabled path is a single
    /// branch per emission site, keeping sweep results byte-identical.
    pub enabled: bool,
    /// Ring capacity per node, in events.
    pub capacity: usize,
}

/// Default per-node ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            capacity: DEFAULT_CAPACITY,
        }
    }
}

impl ObsConfig {
    /// Reads the environment: `IBIS_OBS=1` enables recording,
    /// `IBIS_OBS_CAP=<events>` overrides the per-node ring capacity.
    pub fn from_env() -> Self {
        let enabled = std::env::var("IBIS_OBS")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on"))
            .unwrap_or(false);
        let capacity = std::env::var("IBIS_OBS_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        ObsConfig { enabled, capacity }
    }

    /// An enabled config with the given per-node capacity.
    pub fn enabled(capacity: usize) -> Self {
        ObsConfig {
            enabled: true,
            capacity: capacity.max(1),
        }
    }
}

/// One node's bounded event ring.
#[derive(Debug, Clone, Default)]
struct NodeRing {
    buf: VecDeque<ObsEvent>,
    dropped: u64,
}

/// The per-run flight recorder. The engine routes stamped events here;
/// each node keeps its own bounded ring so one chatty node cannot evict
/// another node's history.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    rings: Vec<NodeRing>,
    seen: u64,
}

impl FlightRecorder {
    /// A recorder for `nodes` nodes with `capacity` events per node.
    pub fn new(nodes: u32, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            rings: vec![NodeRing::default(); nodes.max(1) as usize],
            seen: 0,
        }
    }

    /// Records one event, evicting the node's oldest if its ring is full.
    pub fn record(&mut self, ev: ObsEvent) {
        self.seen += 1;
        let ring = match self.rings.get_mut(ev.node as usize) {
            Some(r) => r,
            None => return, // out-of-range node: drop silently (defensive)
        };
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(ev);
    }

    /// Events offered so far (retained + dropped).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events currently retained across all rings.
    pub fn retained(&self) -> usize {
        self.rings.iter().map(|r| r.buf.len()).sum()
    }

    /// Freezes the recorder into a [`Recording`]: per-node streams are
    /// merged and stably sorted by time, so per-node processing order is
    /// preserved within equal timestamps.
    pub fn finish(self, meta: RecordingMeta) -> Recording {
        let dropped: Vec<u64> = self.rings.iter().map(|r| r.dropped).collect();
        let mut events: Vec<ObsEvent> = Vec::with_capacity(self.retained());
        for ring in self.rings {
            events.extend(ring.buf);
        }
        events.sort_by_key(|e| e.at);
        Recording {
            meta,
            events,
            seen: self.seen,
            dropped,
        }
    }
}

/// Run-level context the auditor and exporters need alongside the raw
/// event stream.
#[derive(Debug, Clone, Default)]
pub struct RecordingMeta {
    /// `(app id, io_weight)` for every application in the run — the
    /// source of truth for proportional-share expectations (weight events
    /// could be evicted from a ring; the metadata cannot).
    pub weights: Vec<(u32, f64)>,
    /// Broker sync period in nanoseconds (0 when coordination is off).
    pub sync_period_ns: u64,
    /// Number of nodes in the run.
    pub nodes: u32,
}

impl RecordingMeta {
    /// The configured weight of `app` (1.0 when unknown).
    pub fn weight_of(&self, app: u32) -> f64 {
        self.weights
            .iter()
            .find(|&&(a, _)| a == app)
            .map(|&(_, w)| w)
            .unwrap_or(1.0)
    }
}

/// A frozen flight-recorder capture: the merged, time-sorted event stream
/// plus run metadata and drop accounting.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    /// Run metadata.
    pub meta: RecordingMeta,
    events: Vec<ObsEvent>,
    seen: u64,
    dropped: Vec<u64>,
}

impl Recording {
    /// The merged event stream, sorted by time (stable per node).
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events offered to the recorder over the run (retained + dropped).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events evicted from `node`'s ring.
    pub fn dropped_on(&self, node: u32) -> u64 {
        self.dropped.get(node as usize).copied().unwrap_or(0)
    }

    /// Total events evicted across all rings.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// True if `node`'s history is incomplete (its ring evicted events).
    /// Invariants that reconstruct cumulative state are skipped for
    /// truncated nodes.
    pub fn truncated(&self, node: u32) -> bool {
        self.dropped_on(node) > 0
    }

    /// Approximate resident bytes of the retained events.
    pub fn retained_bytes(&self) -> usize {
        self.events.len() * std::mem::size_of::<ObsEvent>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use ibis_simcore::SimTime;

    fn ev(at: u64, node: u32, depth: u32) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_nanos(at),
            node,
            dev: 0,
            kind: EventKind::DepthAdjusted { depth },
        }
    }

    #[test]
    fn ring_bounds_memory_and_counts_drops() {
        let mut rec = FlightRecorder::new(1, 3);
        for i in 0..5 {
            rec.record(ev(i, 0, i as u32));
        }
        assert_eq!(rec.seen(), 5);
        assert_eq!(rec.retained(), 3);
        let r = rec.finish(RecordingMeta::default());
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped_on(0), 2);
        assert!(r.truncated(0));
        // The *newest* events survive.
        assert!(matches!(r.events()[0].kind, EventKind::DepthAdjusted { depth: 2 }));
    }

    #[test]
    fn per_node_rings_are_independent() {
        let mut rec = FlightRecorder::new(2, 2);
        for i in 0..10 {
            rec.record(ev(i, 0, 0));
        }
        rec.record(ev(100, 1, 7));
        let r = rec.finish(RecordingMeta::default());
        assert_eq!(r.dropped_on(0), 8);
        assert_eq!(r.dropped_on(1), 0);
        assert!(!r.truncated(1));
        assert_eq!(r.dropped_total(), 8);
    }

    #[test]
    fn finish_merges_sorted_by_time() {
        let mut rec = FlightRecorder::new(2, 16);
        rec.record(ev(5, 1, 1));
        rec.record(ev(3, 0, 2));
        rec.record(ev(5, 0, 3));
        let r = rec.finish(RecordingMeta::default());
        let times: Vec<u64> = r.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(times, vec![3, 5, 5]);
    }

    #[test]
    fn meta_weight_lookup() {
        let meta = RecordingMeta {
            weights: vec![(1, 32.0), (2, 1.0)],
            sync_period_ns: 1_000_000_000,
            nodes: 8,
        };
        assert_eq!(meta.weight_of(1), 32.0);
        assert_eq!(meta.weight_of(9), 1.0);
    }

    #[test]
    fn env_config_defaults_off() {
        std::env::remove_var("IBIS_OBS");
        let c = ObsConfig::from_env();
        assert!(!c.enabled);
        assert_eq!(c.capacity, DEFAULT_CAPACITY);
    }
}
