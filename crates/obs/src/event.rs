//! The observability event vocabulary and the per-emitter buffer.
//!
//! Every interposition point that matters for the paper's fairness story
//! emits one of these typed events: the SFQ schedulers tag, delay, and
//! dispatch requests; the device layer completes them; the SFQ(D2)
//! controller retunes the depth; the coordination plane applies broker
//! totals; the namenode places blocks. An [`EventBuf`] sits inside each
//! emitter and costs one branch when recording is off.

use ibis_simcore::SimTime;

/// One typed observability event, before the engine stamps its origin.
///
/// Application ids and I/O ids are raw integers (`AppId(u32)` / request
/// ids) so the event vocabulary does not depend on the scheduler crate —
/// `ibis-core` depends on `ibis-obs`, not the other way around.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A request arrived at an SFQ scheduler and received its start tag
    /// `S(r) = max(v, F_prev + δ/φ)`.
    RequestTagged {
        /// Request id.
        io: u64,
        /// Owning application id.
        app: u32,
        /// Request cost in bytes.
        bytes: u64,
        /// True for writes.
        write: bool,
        /// The start tag assigned on arrival.
        start_tag: f64,
    },
    /// The DSFQ delay rule charged foreign (other-node) service to a flow
    /// on arrival — emitted only when the consumed delay is non-zero.
    DelayApplied {
        /// Application id.
        app: u32,
        /// Bytes of foreign service folded into the start tag (after the
        /// optional `delay_cap`).
        delay: u64,
    },
    /// The scheduler handed the minimum-start-tag request to the device.
    Dispatched {
        /// Request id.
        io: u64,
        /// Owning application id.
        app: u32,
        /// The request's start tag — the virtual time after this dispatch.
        start_tag: f64,
    },
    /// The device finished servicing a request (emitted by the engine's
    /// device layer, so it covers every policy including Native).
    Completed {
        /// Request id.
        io: u64,
        /// Owning application id.
        app: u32,
        /// Bytes serviced.
        bytes: u64,
        /// True for writes.
        write: bool,
        /// Dispatch-to-completion device latency in nanoseconds.
        latency_ns: u64,
    },
    /// The SFQ(D2) integral controller changed the depth bound.
    DepthAdjusted {
        /// The new depth `D`.
        depth: u32,
    },
    /// A broker reply was applied: cluster-wide total service for one
    /// application as seen by this scheduler at this sync.
    BrokerSync {
        /// Application id.
        app: u32,
        /// Broker-reported cluster-wide total service, bytes.
        total: u64,
    },
    /// A fault was injected at this site (engine fault layer). `kind` is
    /// a small discriminant: 0 = broker outage began, 1 = report dropped,
    /// 2 = reply delayed, 3 = node crash, 4 = node restart, 5 = device
    /// slowdown began, 6 = device slowdown ended.
    FaultInjected {
        /// Fault discriminant (see above).
        kind: u32,
        /// Kind-specific detail (e.g. sync index, slowdown factor ×1000).
        detail: u64,
    },
    /// A local scheduler's broker totals exceeded the staleness bound (or
    /// were never delivered): it entered degraded mode and now applies
    /// zero DSFQ delay — pure local SFQ(D2) — until the broker answers.
    DegradedEnter {
        /// Age of the last applied sync in nanoseconds; `u64::MAX` when
        /// no sync was ever applied (broker dark since start).
        age_ns: u64,
    },
    /// A fresh broker reply ended a degraded episode; DSFQ delays resume.
    DegradedExit {
        /// Length of the degraded episode in nanoseconds.
        dark_ns: u64,
    },
    /// A broker report failed and the scheduler scheduled a backoff retry.
    ReportRetry {
        /// Retry attempt number (1-based).
        attempt: u32,
    },
    /// A job entered the system (open-system arrival): the engine
    /// registered its flow and started the arrival→completion clock.
    JobArrived {
        /// Job id.
        job: u32,
        /// Application (flow) id the job's I/O is tagged with — shared by
        /// all of a tenant's jobs in multi-tenant runs.
        app: u32,
    },
    /// A job completed; closes the clock opened by
    /// [`EventKind::JobArrived`].
    JobCompleted {
        /// Job id.
        job: u32,
        /// Application (flow) id.
        app: u32,
        /// Arrival→completion latency in nanoseconds.
        latency_ns: u64,
    },
    /// The engine submitted a request to a node's I/O scheduler (emitted
    /// for every policy, including Native, which has no tagging event).
    /// Opens the request's queue-wait span; the dispatch instant is
    /// recovered from [`EventKind::Completed`] as `at − latency_ns`.
    IoQueued {
        /// Request id.
        io: u64,
        /// Owning application id.
        app: u32,
        /// Request cost in bytes.
        bytes: u64,
        /// True for writes.
        write: bool,
    },
    /// A task was granted a slot and began executing (opens the task
    /// span; the stamped node is where the task runs).
    TaskStarted {
        /// Owning job id.
        job: u32,
        /// Task id: the index within the job's maps or reduces, with the
        /// high bit set for reduces.
        task: u32,
        /// Application (flow) id the task's I/O is tagged with.
        app: u32,
    },
    /// A task released its slot (closes the span opened by
    /// [`EventKind::TaskStarted`]).
    TaskFinished {
        /// Owning job id.
        job: u32,
        /// Task id (same encoding as [`EventKind::TaskStarted`]).
        task: u32,
    },
    /// The namenode allocated a block (primary replica first).
    BlockPlaced {
        /// Block id.
        block: u64,
        /// Node holding the primary replica.
        primary: u32,
        /// Total replica count.
        replicas: u32,
    },
}

/// One recorded event with its origin stamped by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsEvent {
    /// Simulated instant of the event.
    pub at: SimTime,
    /// Node the emitting scheduler/device lives on.
    pub node: u32,
    /// Device index on the node (0 = HDFS, 1 = scratch).
    pub dev: u8,
    /// The typed payload.
    pub kind: EventKind,
}

/// A per-emitter event buffer: zero-cost when disabled (one predictable
/// branch per emission site), an appending `Vec` when enabled. The engine
/// drains buffers inside the handler that produced the events, so the
/// per-node ring receives them in true processing order.
#[derive(Debug, Clone, Default)]
pub struct EventBuf {
    enabled: bool,
    buf: Vec<(SimTime, EventKind)>,
}

impl EventBuf {
    /// A disabled, empty buffer.
    pub fn new() -> Self {
        EventBuf::default()
    }

    /// Whether emissions are being kept.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off. Turning it off discards buffered events.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.buf = Vec::new();
        }
    }

    /// Records one event if enabled. The disabled path is a single branch;
    /// call sites may also pre-check [`EventBuf::enabled`] to skip payload
    /// construction entirely.
    #[inline]
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        if self.enabled {
            self.buf.push((at, kind));
        }
    }

    /// Moves all buffered events into `sink`, preserving order.
    pub fn drain_into(&mut self, sink: &mut Vec<(SimTime, EventKind)>) {
        sink.append(&mut self.buf);
    }

    /// Number of buffered (not yet drained) events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_drops_events() {
        let mut b = EventBuf::new();
        assert!(!b.enabled());
        b.push(SimTime::ZERO, EventKind::DepthAdjusted { depth: 4 });
        assert!(b.is_empty());
    }

    #[test]
    fn enabled_buffer_keeps_order() {
        let mut b = EventBuf::new();
        b.set_enabled(true);
        b.push(SimTime::from_secs(1), EventKind::DepthAdjusted { depth: 4 });
        b.push(SimTime::from_secs(2), EventKind::DepthAdjusted { depth: 5 });
        assert_eq!(b.len(), 2);
        let mut out = Vec::new();
        b.drain_into(&mut out);
        assert!(b.is_empty());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, SimTime::from_secs(1));
        assert!(matches!(out[1].1, EventKind::DepthAdjusted { depth: 5 }));
    }

    #[test]
    fn disabling_discards_buffered() {
        let mut b = EventBuf::new();
        b.set_enabled(true);
        b.push(SimTime::ZERO, EventKind::DepthAdjusted { depth: 1 });
        b.set_enabled(false);
        assert!(b.is_empty());
        let mut out = Vec::new();
        b.drain_into(&mut out);
        assert!(out.is_empty());
    }
}
