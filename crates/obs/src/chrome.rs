//! Chrome `trace_event` exporter.
//!
//! Converts a [`Recording`] into the JSON consumed by `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev): each node becomes a process,
//! each application a thread lane of request slices, with the SFQ(D2)
//! depth and broker totals as counter tracks and delay charges / block
//! placements as instant markers. The format needs no external crates —
//! events are flat objects with numeric and short string fields.

use crate::event::EventKind;
use crate::recorder::Recording;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Microseconds (Chrome's `ts` unit) from simulator nanoseconds.
fn us(nanos: u64) -> f64 {
    nanos as f64 / 1_000.0
}

/// Device index → human label for track names.
fn dev_name(dev: u8) -> &'static str {
    match dev {
        0 => "hdfs",
        1 => "scratch",
        _ => "dev?",
    }
}

/// Renders `rec` as a Chrome `trace_event` JSON document.
///
/// Layout:
/// * process `pid = node`, named `node<N>`;
/// * thread `tid = app` inside each process, named `app<A> (w=<weight>)`,
///   carrying one `X` (complete) slice per finished request spanning its
///   device service time;
/// * `C` (counter) tracks `depth/<dev>` for SFQ(D2) depth changes and
///   `broker/<dev>/app<A>` for applied cluster-total syncs;
/// * `i` (instant) markers for DSFQ delay charges and namenode block
///   placements.
pub fn export(rec: &Recording) -> String {
    let mut out = String::with_capacity(128 + rec.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };

    // Metadata: name the process/thread lanes up front.
    let mut lanes: BTreeSet<(u32, u32)> = BTreeSet::new();
    for ev in rec.events() {
        let app = match ev.kind {
            EventKind::RequestTagged { app, .. }
            | EventKind::DelayApplied { app, .. }
            | EventKind::Dispatched { app, .. }
            | EventKind::Completed { app, .. }
            | EventKind::BrokerSync { app, .. }
            | EventKind::JobArrived { app, .. }
            | EventKind::JobCompleted { app, .. } => Some(app),
            EventKind::DepthAdjusted { .. }
            | EventKind::BlockPlaced { .. }
            | EventKind::FaultInjected { .. }
            | EventKind::DegradedEnter { .. }
            | EventKind::DegradedExit { .. }
            | EventKind::ReportRetry { .. } => None,
        };
        if let Some(app) = app {
            lanes.insert((ev.node, app));
        }
    }
    let nodes: BTreeSet<u32> = lanes.iter().map(|&(n, _)| n).collect();
    for &node in &nodes {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
             \"args\":{{\"name\":\"node{node}\"}}}}"
        );
    }
    for &(node, app) in &lanes {
        sep(&mut out);
        let w = rec.meta.weight_of(app);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":{app},\
             \"args\":{{\"name\":\"app{app} (w={w})\"}}}}"
        );
    }

    for ev in rec.events() {
        let (node, dev, t) = (ev.node, ev.dev, ev.at.as_nanos());
        match ev.kind {
            EventKind::Completed {
                io,
                app,
                bytes,
                write,
                latency_ns,
            } => {
                let start = t.saturating_sub(latency_ns);
                let op = if write { "write" } else { "read" };
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"{op}\",\"cat\":\"io,{}\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":{node},\"tid\":{app},\
                     \"args\":{{\"io\":{io},\"bytes\":{bytes},\"dev\":\"{}\"}}}}",
                    dev_name(dev),
                    us(start),
                    us(latency_ns),
                    dev_name(dev),
                );
            }
            EventKind::DepthAdjusted { depth } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"depth/{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{node},\
                     \"tid\":0,\"args\":{{\"D\":{depth}}}}}",
                    dev_name(dev),
                    us(t),
                );
            }
            EventKind::BrokerSync { app, total } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"broker/{}/app{app}\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":{node},\"tid\":0,\"args\":{{\"total_bytes\":{total}}}}}",
                    dev_name(dev),
                    us(t),
                );
            }
            EventKind::DelayApplied { app, delay } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"dsfq delay\",\"cat\":\"fairness\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{},\"pid\":{node},\"tid\":{app},\
                     \"args\":{{\"delay_bytes\":{delay},\"dev\":\"{}\"}}}}",
                    us(t),
                    dev_name(dev),
                );
            }
            EventKind::BlockPlaced {
                block,
                primary,
                replicas,
            } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"block placed\",\"cat\":\"dfs\",\"ph\":\"i\",\
                     \"s\":\"g\",\"ts\":{},\"pid\":{node},\"tid\":0,\
                     \"args\":{{\"block\":{block},\"primary\":{primary},\
                     \"replicas\":{replicas}}}}}",
                    us(t),
                );
            }
            EventKind::FaultInjected { kind, detail } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"fault injected\",\"cat\":\"faults\",\"ph\":\"i\",\
                     \"s\":\"g\",\"ts\":{},\"pid\":{node},\"tid\":0,\
                     \"args\":{{\"kind\":{kind},\"detail\":{detail},\"dev\":\"{}\"}}}}",
                    us(t),
                    dev_name(dev),
                );
            }
            EventKind::DegradedEnter { age_ns } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"degraded/{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{node},\
                     \"tid\":0,\"args\":{{\"degraded\":1,\"age_ns\":{age_ns}}}}}",
                    dev_name(dev),
                    us(t),
                );
            }
            EventKind::DegradedExit { dark_ns } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"degraded/{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{node},\
                     \"tid\":0,\"args\":{{\"degraded\":0,\"dark_ns\":{dark_ns}}}}}",
                    dev_name(dev),
                    us(t),
                );
            }
            EventKind::ReportRetry { attempt } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"report retry\",\"cat\":\"faults\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{},\"pid\":{node},\"tid\":0,\
                     \"args\":{{\"attempt\":{attempt},\"dev\":\"{}\"}}}}",
                    us(t),
                    dev_name(dev),
                );
            }
            EventKind::JobArrived { job, app } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"job{job} arrived\",\"cat\":\"jobs\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{},\"pid\":{node},\"tid\":{app},\
                     \"args\":{{\"job\":{job}}}}}",
                    us(t),
                );
            }
            EventKind::JobCompleted { job, app, latency_ns } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"job{job} completed\",\"cat\":\"jobs\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{},\"pid\":{node},\"tid\":{app},\
                     \"args\":{{\"job\":{job},\"latency_ms\":{}}}}}",
                    us(t),
                    latency_ns as f64 / 1e6,
                );
            }
            // Tagging/dispatch detail stays in the recording for the
            // auditor; as trace slices they would only duplicate the
            // Completed spans.
            EventKind::RequestTagged { .. } | EventKind::Dispatched { .. } => {}
        }
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsEvent;
    use crate::recorder::{FlightRecorder, RecordingMeta};
    use ibis_simcore::SimTime;

    fn sample_recording() -> Recording {
        let mut rec = FlightRecorder::new(2, 64);
        let mut push = |at: u64, node: u32, dev: u8, kind: EventKind| {
            rec.record(ObsEvent {
                at: SimTime::from_nanos(at),
                node,
                dev,
                kind,
            });
        };
        push(2_000, 0, 0, EventKind::Completed {
            io: 1,
            app: 7,
            bytes: 4096,
            write: false,
            latency_ns: 1_500,
        });
        push(3_000, 0, 1, EventKind::DepthAdjusted { depth: 6 });
        push(4_000, 1, 0, EventKind::BrokerSync { app: 7, total: 999 });
        push(5_000, 1, 0, EventKind::DelayApplied { app: 7, delay: 123 });
        push(6_000, 0, 0, EventKind::BlockPlaced {
            block: 42,
            primary: 1,
            replicas: 3,
        });
        rec.finish(RecordingMeta {
            weights: vec![(7, 32.0)],
            sync_period_ns: 1_000_000_000,
            nodes: 2,
        })
    }

    #[test]
    fn exports_every_event_class() {
        let json = export(&sample_recording());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"depth/scratch\""));
        assert!(json.contains("\"name\":\"broker/hdfs/app7\""));
        assert!(json.contains("\"name\":\"dsfq delay\""));
        assert!(json.contains("\"name\":\"block placed\""));
        assert!(json.contains("app7 (w=32)"));
        // Slice starts at completion minus latency: (2000 − 1500) ns = 0.5 µs.
        assert!(json.contains("\"ts\":0.5,\"dur\":1.5"));
    }

    #[test]
    fn empty_recording_is_valid_json_shell() {
        let rec = FlightRecorder::new(1, 4).finish(RecordingMeta::default());
        let json = export(&rec);
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }

    #[test]
    fn balanced_braces_and_brackets() {
        let json = export(&sample_recording());
        let depth_ok = |open: char, close: char| {
            let mut d = 0i64;
            for c in json.chars() {
                if c == open {
                    d += 1;
                } else if c == close {
                    d -= 1;
                    assert!(d >= 0);
                }
            }
            d == 0
        };
        assert!(depth_ok('{', '}'));
        assert!(depth_ok('[', ']'));
    }
}
