//! Chrome `trace_event` exporter.
//!
//! Converts a [`Recording`] into the JSON consumed by `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev): each node becomes a process,
//! each application a thread lane of request slices, with the SFQ(D2)
//! depth and broker totals as counter tracks and delay charges / block
//! placements as instant markers. Request lifecycles additionally render
//! as real duration (`ph:"B"/"E"`) span pairs — queue wait then device
//! service — on per-node request lanes, with `s`/`f` flow arrows linking
//! each dispatch to its completion slice; task occupancy renders the same
//! way on task lanes. The format needs no external crates — events are
//! flat objects with numeric and short string fields.

use crate::event::EventKind;
use crate::recorder::Recording;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// First request-lane `tid` (clear of real application ids).
const REQ_TID_BASE: u32 = 1_000_000;

/// First task-lane `tid`.
const TASK_TID_BASE: u32 = 2_000_000;

/// A closed interval destined for a lane: `[start, end)` with the span
/// midpoint (`dispatch` for requests) and identifying payload.
struct SpanRow {
    start: u64,
    mid: u64,
    end: u64,
    io: u64,
    app: u32,
    dev: u8,
    bytes: u64,
    write: bool,
}

/// Greedy interval-graph coloring: assigns each row (sorted by start) the
/// lowest-numbered lane whose previous occupant has already ended, so
/// spans sharing a lane never overlap and `B`/`E` pairs nest correctly.
/// Returns `(lane, row)` pairs plus the number of lanes used.
fn assign_lanes(mut rows: Vec<SpanRow>) -> (Vec<(u32, SpanRow)>, u32) {
    rows.sort_unstable_by_key(|r| (r.start, r.io));
    let mut lane_ends: Vec<u64> = Vec::new();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let lane = match lane_ends.iter().position(|&end| end <= row.start) {
            Some(i) => i,
            None => {
                lane_ends.push(0);
                lane_ends.len() - 1
            }
        };
        lane_ends[lane] = row.end.max(row.start + 1);
        out.push((lane as u32, row));
    }
    (out, lane_ends.len() as u32)
}

/// Microseconds (Chrome's `ts` unit) from simulator nanoseconds.
fn us(nanos: u64) -> f64 {
    nanos as f64 / 1_000.0
}

/// Device index → human label for track names.
fn dev_name(dev: u8) -> &'static str {
    match dev {
        0 => "hdfs",
        1 => "scratch",
        _ => "dev?",
    }
}

/// Renders `rec` as a Chrome `trace_event` JSON document.
///
/// Layout:
/// * process `pid = node`, named `node<N>`;
/// * thread `tid = app` inside each process, named `app<A> (w=<weight>)`,
///   carrying one `X` (complete) slice per finished request spanning its
///   device service time;
/// * `C` (counter) tracks `depth/<dev>` for SFQ(D2) depth changes and
///   `broker/<dev>/app<A>` for applied cluster-total syncs;
/// * `i` (instant) markers for DSFQ delay charges and namenode block
///   placements.
pub fn export(rec: &Recording) -> String {
    let mut out = String::with_capacity(128 + rec.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };

    // Metadata: name the process/thread lanes up front.
    let mut lanes: BTreeSet<(u32, u32)> = BTreeSet::new();
    for ev in rec.events() {
        let app = match ev.kind {
            EventKind::RequestTagged { app, .. }
            | EventKind::DelayApplied { app, .. }
            | EventKind::Dispatched { app, .. }
            | EventKind::Completed { app, .. }
            | EventKind::BrokerSync { app, .. }
            | EventKind::IoQueued { app, .. }
            | EventKind::TaskStarted { app, .. }
            | EventKind::JobArrived { app, .. }
            | EventKind::JobCompleted { app, .. } => Some(app),
            EventKind::DepthAdjusted { .. }
            | EventKind::BlockPlaced { .. }
            | EventKind::FaultInjected { .. }
            | EventKind::DegradedEnter { .. }
            | EventKind::DegradedExit { .. }
            | EventKind::TaskFinished { .. }
            | EventKind::ReportRetry { .. } => None,
        };
        if let Some(app) = app {
            lanes.insert((ev.node, app));
        }
    }
    let nodes: BTreeSet<u32> = lanes.iter().map(|&(n, _)| n).collect();
    for &node in &nodes {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
             \"args\":{{\"name\":\"node{node}\"}}}}"
        );
    }
    for &(node, app) in &lanes {
        sep(&mut out);
        let w = rec.meta.weight_of(app);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":{app},\
             \"args\":{{\"name\":\"app{app} (w={w})\"}}}}"
        );
    }

    // Request lifecycles: match each queue-open event (IoQueued, or
    // RequestTagged for recordings predating it) with its Completed; the
    // dispatch instant is completion minus device latency. Tasks match
    // TaskStarted with TaskFinished on (job, task). Unmatched opens
    // (ring-truncated or still in flight at the cut) are dropped.
    let mut req_open: BTreeMap<(u32, u8, u64), (u64, u32)> = BTreeMap::new();
    let mut task_open: BTreeMap<(u32, u64), (u64, u32)> = BTreeMap::new();
    let mut req_rows: BTreeMap<u32, Vec<SpanRow>> = BTreeMap::new();
    let mut task_rows: BTreeMap<u32, Vec<SpanRow>> = BTreeMap::new();
    for ev in rec.events() {
        let (node, dev, t) = (ev.node, ev.dev, ev.at.as_nanos());
        match ev.kind {
            EventKind::IoQueued { io, app, .. } | EventKind::RequestTagged { io, app, .. } => {
                req_open.entry((node, dev, io)).or_insert((t, app));
            }
            EventKind::Completed {
                io,
                app,
                bytes,
                write,
                latency_ns,
            } => {
                if let Some((start, _)) = req_open.remove(&(node, dev, io)) {
                    let mid = t.saturating_sub(latency_ns).max(start);
                    req_rows.entry(node).or_default().push(SpanRow {
                        start,
                        mid,
                        end: t.max(mid),
                        io,
                        app,
                        dev,
                        bytes,
                        write,
                    });
                }
            }
            EventKind::TaskStarted { job, task, app } => {
                let key = (node, (u64::from(job) << 32) | u64::from(task));
                task_open.entry(key).or_insert((t, app));
            }
            EventKind::TaskFinished { job, task } => {
                let id = (u64::from(job) << 32) | u64::from(task);
                if let Some((start, app)) = task_open.remove(&(node, id)) {
                    task_rows.entry(node).or_default().push(SpanRow {
                        start,
                        mid: start,
                        end: t.max(start),
                        io: id,
                        app,
                        dev: 0,
                        bytes: 0,
                        write: false,
                    });
                }
            }
            _ => {}
        }
    }
    for (node, rows) in req_rows {
        let (placed, lanes_used) = assign_lanes(rows);
        for lane in 0..lanes_used {
            sep(&mut out);
            let tid = REQ_TID_BASE + lane;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":{tid},\
                 \"args\":{{\"name\":\"io lane {lane}\"}}}}"
            );
        }
        for (lane, r) in placed {
            let tid = REQ_TID_BASE + lane;
            let op = if r.write { "write" } else { "read" };
            let (io, app, bytes, dev) = (r.io, r.app, r.bytes, dev_name(r.dev));
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"queue\",\"cat\":\"io,{dev}\",\"ph\":\"B\",\"ts\":{},\
                 \"pid\":{node},\"tid\":{tid},\"args\":{{\"io\":{io},\"app\":{app},\
                 \"bytes\":{bytes},\"op\":\"{op}\"}}}}",
                us(r.start),
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"queue\",\"ph\":\"E\",\"ts\":{},\"pid\":{node},\"tid\":{tid}}}",
                us(r.mid),
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"service\",\"cat\":\"io,{dev}\",\"ph\":\"B\",\"ts\":{},\
                 \"pid\":{node},\"tid\":{tid},\"args\":{{\"io\":{io},\"app\":{app}}}}}",
                us(r.mid),
            );
            // Flow arrow: dispatch on the request lane → completion slice
            // on the app lane (Dispatched → Completed causality).
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"io\",\"cat\":\"io\",\"ph\":\"s\",\"id\":{io},\"ts\":{},\
                 \"pid\":{node},\"tid\":{tid}}}",
                us(r.mid),
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"io\",\"cat\":\"io\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{io},\
                 \"ts\":{},\"pid\":{node},\"tid\":{app}}}",
                us(r.end),
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"service\",\"ph\":\"E\",\"ts\":{},\"pid\":{node},\"tid\":{tid}}}",
                us(r.end),
            );
        }
    }
    for (node, rows) in task_rows {
        let (placed, lanes_used) = assign_lanes(rows);
        for lane in 0..lanes_used {
            sep(&mut out);
            let tid = TASK_TID_BASE + lane;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":{tid},\
                 \"args\":{{\"name\":\"task lane {lane}\"}}}}"
            );
        }
        for (lane, r) in placed {
            let tid = TASK_TID_BASE + lane;
            let (job, task) = ((r.io >> 32) as u32, r.io as u32);
            let kind = if task & 0x8000_0000 != 0 { "reduce" } else { "map" };
            let idx = task & 0x7fff_ffff;
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"job{job} {kind}{idx}\",\"cat\":\"tasks\",\"ph\":\"B\",\
                 \"ts\":{},\"pid\":{node},\"tid\":{tid},\"args\":{{\"job\":{job},\
                 \"app\":{}}}}}",
                us(r.start),
                r.app,
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"job{job} {kind}{idx}\",\"ph\":\"E\",\"ts\":{},\
                 \"pid\":{node},\"tid\":{tid}}}",
                us(r.end),
            );
        }
    }

    for ev in rec.events() {
        let (node, dev, t) = (ev.node, ev.dev, ev.at.as_nanos());
        match ev.kind {
            EventKind::Completed {
                io,
                app,
                bytes,
                write,
                latency_ns,
            } => {
                let start = t.saturating_sub(latency_ns);
                let op = if write { "write" } else { "read" };
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"{op}\",\"cat\":\"io,{}\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":{node},\"tid\":{app},\
                     \"args\":{{\"io\":{io},\"bytes\":{bytes},\"dev\":\"{}\"}}}}",
                    dev_name(dev),
                    us(start),
                    us(latency_ns),
                    dev_name(dev),
                );
            }
            EventKind::DepthAdjusted { depth } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"depth/{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{node},\
                     \"tid\":0,\"args\":{{\"D\":{depth}}}}}",
                    dev_name(dev),
                    us(t),
                );
            }
            EventKind::BrokerSync { app, total } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"broker/{}/app{app}\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":{node},\"tid\":0,\"args\":{{\"total_bytes\":{total}}}}}",
                    dev_name(dev),
                    us(t),
                );
            }
            EventKind::DelayApplied { app, delay } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"dsfq delay\",\"cat\":\"fairness\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{},\"pid\":{node},\"tid\":{app},\
                     \"args\":{{\"delay_bytes\":{delay},\"dev\":\"{}\"}}}}",
                    us(t),
                    dev_name(dev),
                );
            }
            EventKind::BlockPlaced {
                block,
                primary,
                replicas,
            } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"block placed\",\"cat\":\"dfs\",\"ph\":\"i\",\
                     \"s\":\"g\",\"ts\":{},\"pid\":{node},\"tid\":0,\
                     \"args\":{{\"block\":{block},\"primary\":{primary},\
                     \"replicas\":{replicas}}}}}",
                    us(t),
                );
            }
            EventKind::FaultInjected { kind, detail } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"fault injected\",\"cat\":\"faults\",\"ph\":\"i\",\
                     \"s\":\"g\",\"ts\":{},\"pid\":{node},\"tid\":0,\
                     \"args\":{{\"kind\":{kind},\"detail\":{detail},\"dev\":\"{}\"}}}}",
                    us(t),
                    dev_name(dev),
                );
            }
            EventKind::DegradedEnter { age_ns } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"degraded/{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{node},\
                     \"tid\":0,\"args\":{{\"degraded\":1,\"age_ns\":{age_ns}}}}}",
                    dev_name(dev),
                    us(t),
                );
            }
            EventKind::DegradedExit { dark_ns } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"degraded/{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{node},\
                     \"tid\":0,\"args\":{{\"degraded\":0,\"dark_ns\":{dark_ns}}}}}",
                    dev_name(dev),
                    us(t),
                );
            }
            EventKind::ReportRetry { attempt } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"report retry\",\"cat\":\"faults\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{},\"pid\":{node},\"tid\":0,\
                     \"args\":{{\"attempt\":{attempt},\"dev\":\"{}\"}}}}",
                    us(t),
                    dev_name(dev),
                );
            }
            EventKind::JobArrived { job, app } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"job{job} arrived\",\"cat\":\"jobs\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{},\"pid\":{node},\"tid\":{app},\
                     \"args\":{{\"job\":{job}}}}}",
                    us(t),
                );
            }
            EventKind::JobCompleted { job, app, latency_ns } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"job{job} completed\",\"cat\":\"jobs\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{},\"pid\":{node},\"tid\":{app},\
                     \"args\":{{\"job\":{job},\"latency_ms\":{}}}}}",
                    us(t),
                    latency_ns as f64 / 1e6,
                );
            }
            // Lifecycle events were already folded into the B/E span
            // pairs above; the tag/dispatch detail stays in the recording
            // for the auditor.
            EventKind::RequestTagged { .. }
            | EventKind::Dispatched { .. }
            | EventKind::IoQueued { .. }
            | EventKind::TaskStarted { .. }
            | EventKind::TaskFinished { .. } => {}
        }
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsEvent;
    use crate::recorder::{FlightRecorder, RecordingMeta};
    use ibis_simcore::SimTime;

    fn sample_recording() -> Recording {
        let mut rec = FlightRecorder::new(2, 64);
        let mut push = |at: u64, node: u32, dev: u8, kind: EventKind| {
            rec.record(ObsEvent {
                at: SimTime::from_nanos(at),
                node,
                dev,
                kind,
            });
        };
        push(100, 0, 0, EventKind::IoQueued {
            io: 1,
            app: 7,
            bytes: 4096,
            write: false,
        });
        push(2_000, 0, 0, EventKind::Completed {
            io: 1,
            app: 7,
            bytes: 4096,
            write: false,
            latency_ns: 1_500,
        });
        push(200, 1, 0, EventKind::TaskStarted { job: 3, task: 0x8000_0001, app: 7 });
        push(900, 1, 0, EventKind::TaskFinished { job: 3, task: 0x8000_0001 });
        push(3_000, 0, 1, EventKind::DepthAdjusted { depth: 6 });
        push(4_000, 1, 0, EventKind::BrokerSync { app: 7, total: 999 });
        push(5_000, 1, 0, EventKind::DelayApplied { app: 7, delay: 123 });
        push(6_000, 0, 0, EventKind::BlockPlaced {
            block: 42,
            primary: 1,
            replicas: 3,
        });
        rec.finish(RecordingMeta {
            weights: vec![(7, 32.0)],
            sync_period_ns: 1_000_000_000,
            nodes: 2,
        })
    }

    #[test]
    fn exports_every_event_class() {
        let json = export(&sample_recording());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"depth/scratch\""));
        assert!(json.contains("\"name\":\"broker/hdfs/app7\""));
        assert!(json.contains("\"name\":\"dsfq delay\""));
        assert!(json.contains("\"name\":\"block placed\""));
        assert!(json.contains("app7 (w=32)"));
        // Slice starts at completion minus latency: (2000 − 1500) ns = 0.5 µs.
        assert!(json.contains("\"ts\":0.5,\"dur\":1.5"));
    }

    #[test]
    fn request_lifecycle_renders_as_duration_spans_with_flow() {
        let json = export(&sample_recording());
        // Queue span opens at the IoQueued instant (0.1 µs) and the
        // service span at dispatch (0.5 µs); both close with E events.
        assert!(json.contains("\"name\":\"queue\",\"cat\":\"io,hdfs\",\"ph\":\"B\",\"ts\":0.1"));
        assert!(json.contains("\"name\":\"queue\",\"ph\":\"E\",\"ts\":0.5"));
        assert!(json.contains("\"name\":\"service\",\"cat\":\"io,hdfs\",\"ph\":\"B\",\"ts\":0.5"));
        assert!(json.contains("\"name\":\"service\",\"ph\":\"E\",\"ts\":2"));
        // Flow arrow from dispatch (request lane) to completion (app lane).
        assert!(json.contains("\"ph\":\"s\",\"id\":1,\"ts\":0.5"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":1,\"ts\":2"));
        assert!(json.contains("\"name\":\"io lane 0\""));
        // Task span: job 3, reduce index 1, on node 1's task lane.
        assert!(json.contains("\"name\":\"job3 reduce1\",\"cat\":\"tasks\",\"ph\":\"B\",\"ts\":0.2"));
        assert!(json.contains("\"name\":\"job3 reduce1\",\"ph\":\"E\",\"ts\":0.9"));
        assert!(json.contains("\"name\":\"task lane 0\""));
    }

    #[test]
    fn overlapping_requests_take_distinct_lanes() {
        let mut rec = FlightRecorder::new(1, 64);
        let mut push = |at: u64, kind: EventKind| {
            rec.record(ObsEvent {
                at: SimTime::from_nanos(at),
                node: 0,
                dev: 0,
                kind,
            });
        };
        for io in 0..3u64 {
            push(1_000 + io, EventKind::IoQueued { io, app: 1, bytes: 64, write: false });
        }
        for io in 0..3u64 {
            push(9_000 + io, EventKind::Completed {
                io,
                app: 1,
                bytes: 64,
                write: false,
                latency_ns: 2_000,
            });
        }
        let json = export(&rec.finish(RecordingMeta {
            weights: vec![(1, 1.0)],
            sync_period_ns: 1_000_000_000,
            nodes: 1,
        }));
        // Three concurrent requests → three non-overlapping lanes.
        for lane in 0..3 {
            assert!(json.contains(&format!("\"name\":\"io lane {lane}\"")), "lane {lane}");
        }
        let opens = json.matches("\"ph\":\"B\"").count();
        let closes = json.matches("\"ph\":\"E\"").count();
        assert_eq!(opens, closes, "every B has a matching E");
        assert_eq!(opens, 6, "queue+service per request");
    }

    #[test]
    fn empty_recording_is_valid_json_shell() {
        let rec = FlightRecorder::new(1, 4).finish(RecordingMeta::default());
        let json = export(&rec);
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }

    #[test]
    fn balanced_braces_and_brackets() {
        let json = export(&sample_recording());
        let depth_ok = |open: char, close: char| {
            let mut d = 0i64;
            for c in json.chars() {
                if c == open {
                    d += 1;
                } else if c == close {
                    d -= 1;
                    assert!(d >= 0);
                }
            }
            d == 0
        };
        assert!(depth_ok('{', '}'));
        assert!(depth_ok('[', ']'));
    }
}
