//! Property-based tests of the storage device and link models.

use ibis_simcore::SimTime;
use ibis_storage::{
    Device, DeviceModel, DeviceRequest, Hdd, HddConfig, IoKind, PsLink, Ssd, SsdConfig,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Submit { read: bool, stream: u8, mib: u8 },
    CompleteNext,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (prop::bool::ANY, 0u8..5, 1u8..9).prop_map(|(read, stream, mib)| Op::Submit {
            read,
            stream,
            mib
        }),
        2 => Just(Op::CompleteNext),
    ]
}

/// Drives any device through random traffic, checking conservation and
/// monotonicity invariants.
fn drive(mut dev: DeviceModel, ops: Vec<Op>) {
    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    let mut pending: Vec<ibis_storage::Started> = Vec::new();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut out = Vec::new();

    for op in ops {
        match op {
            Op::Submit { read, stream, mib } => {
                out.clear();
                dev.submit(
                    DeviceRequest {
                        id: next_id,
                        kind: if read { IoKind::Read } else { IoKind::Write },
                        stream: stream as u64,
                        bytes: mib as u64 * (1 << 20),
                    },
                    now,
                    &mut out,
                );
                next_id += 1;
                submitted += 1;
                for s in &out {
                    assert!(s.complete_at >= now, "completion in the past");
                    pending.push(*s);
                }
            }
            Op::CompleteNext => {
                if pending.is_empty() {
                    continue;
                }
                // earliest completion first, as the engine would
                let idx = pending
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.complete_at)
                    .map(|(i, _)| i)
                    .unwrap();
                let s = pending.swap_remove(idx);
                now = now.max(s.complete_at);
                out.clear();
                dev.on_complete(s.id, now, &mut out);
                completed += 1;
                for st in &out {
                    assert!(st.complete_at >= now);
                    pending.push(*st);
                }
            }
        }
        assert_eq!(
            dev.in_service(),
            pending.len(),
            "device in_service disagrees with engine view"
        );
    }
    // Drain.
    while !pending.is_empty() {
        let idx = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.complete_at)
            .map(|(i, _)| i)
            .unwrap();
        let s = pending.swap_remove(idx);
        now = now.max(s.complete_at);
        out.clear();
        dev.on_complete(s.id, now, &mut out);
        completed += 1;
        pending.extend(out.iter().copied());
    }
    assert_eq!(submitted, completed, "requests lost in the device");
    assert_eq!(dev.outstanding(), 0);
    assert_eq!(dev.stats().completed, completed);
}

proptest! {
    #[test]
    fn hdd_conserves_requests(ops in prop::collection::vec(op_strategy(), 1..150)) {
        drive(
            DeviceModel::Hdd(Hdd::new(HddConfig::default())),
            ops,
        );
    }

    #[test]
    fn ssd_conserves_requests(ops in prop::collection::vec(op_strategy(), 1..150)) {
        drive(DeviceModel::Ssd(Ssd::new(SsdConfig::default())), ops);
    }

    /// The PS link delivers every transfer and conserves bytes.
    #[test]
    fn ps_link_conserves_transfers(sizes in prop::collection::vec(1u64..100_000_000, 1..60)) {
        let mut link = PsLink::new(100e6);
        let mut timer = None;
        for (i, &s) in sizes.iter().enumerate() {
            timer = Some(link.start_counted(i as u64, s, SimTime::ZERO));
        }
        let mut done = 0;
        let mut last = SimTime::ZERO;
        while let Some(t) = timer {
            let (finished, next) = link.on_timer(t.at, t.epoch);
            prop_assert!(t.at >= last);
            last = t.at;
            done += finished.len();
            timer = next;
        }
        prop_assert_eq!(done, sizes.len());
        prop_assert_eq!(link.active(), 0);
        prop_assert_eq!(link.bytes_done(), sizes.iter().sum::<u64>());
        // Makespan at least total/capacity (can't beat the link rate).
        let min_secs = sizes.iter().sum::<u64>() as f64 / 100e6;
        prop_assert!(last.as_secs_f64() >= min_secs * 0.999, "{last} < {min_secs}");
    }

    /// Staggered joins never stall the link: it finishes within the
    /// serial bound plus the stagger span.
    #[test]
    fn ps_link_with_staggered_arrivals(arrivals in prop::collection::vec((0u64..5_000, 1u64..50_000_000), 1..40)) {
        let mut link = PsLink::new(100e6);
        let mut events: Vec<(SimTime, usize)> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &(at, _))| (SimTime::from_millis(at), i))
            .collect();
        events.sort_by_key(|&(t, i)| (t, i));
        let mut timer: Option<ibis_storage::link::LinkTimer> = None;
        let mut done = 0usize;
        let mut idx = 0usize;
        let mut now;
        loop {
            let next_arrival = events.get(idx).map(|&(t, _)| t);
            let next_timer = timer.as_ref().map(|t| t.at);
            match (next_arrival, next_timer) {
                (Some(a), t) if t.is_none_or(|t| a <= t) => {
                    now = a;
                    let (_, i) = events[idx];
                    idx += 1;
                    timer = Some(link.start(i as u64, arrivals[i].1, now));
                }
                (Some(_), None) => unreachable!("guard above covers this"),
                (_, Some(t)) => {
                    now = t;
                    let epoch = timer.take().unwrap().epoch;
                    let (finished, next) = link.on_timer(now, epoch);
                    done += finished.len();
                    timer = next;
                }
                (None, None) => break,
            }
        }
        prop_assert_eq!(done, arrivals.len());
        prop_assert_eq!(link.active(), 0);
    }
}
