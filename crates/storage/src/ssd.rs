//! Flash-device model.
//!
//! Reproduces the SSD behaviours §7.2 of the paper relies on:
//!
//! 1. **Read/write asymmetry** — writes are several times slower than
//!    reads (the paper's Intel MLC SATA devices).
//! 2. **Writes delay queued reads** — the device serves its internal queue
//!    FIFO across `ways` parallel channels, so reads stuck behind a burst
//!    of slow writes wait. This is exactly why SFQ(D2) "implicitly promotes
//!    reads" on SSDs: when write latency rises, the controller shrinks D,
//!    fewer writes are outstanding inside the device, and backlogged reads
//!    get dispatched ahead of some writes by the fair queue.
//! 3. **Moderate concurrency gain** — throughput grows until all channels
//!    are busy, then saturates; no positional costs.
//! 4. **Optional GC stalls** — after `gc_interval_bytes` of writes the next
//!    write pays `gc_pause`, adding the tail-latency noise real flash shows.

use crate::device::{Device, DeviceKind, DeviceStats, InternalQueue};
use crate::request::{DeviceRequest, IoKind, Started};
use ibis_simcore::rng::SimRng;
use ibis_simcore::units::{transfer_time, GIB};
use ibis_simcore::{SimDuration, SimTime};

/// Configuration of the flash model. Defaults approximate the paper's
/// Intel 120 GB MLC SATA devices (~280 MB/s read, ~170 MB/s write at
/// full concurrency; the evaluation's SSD setup outperforms its disks).
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Internal channel parallelism (requests serviced concurrently).
    pub ways: u32,
    /// Per-channel read bandwidth, bytes/sec.
    pub read_bw_per_way: f64,
    /// Per-channel write bandwidth, bytes/sec.
    pub write_bw_per_way: f64,
    /// Fixed read access latency.
    pub read_latency: SimDuration,
    /// Fixed write access latency (program time).
    pub write_latency: SimDuration,
    /// A GC stall is charged after this many written bytes; 0 disables GC.
    pub gc_interval_bytes: u64,
    /// Duration of one GC stall.
    pub gc_pause: SimDuration,
    /// RNG seed for the GC-pause jitter.
    pub seed: u64,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            ways: 2,
            read_bw_per_way: 140e6,
            write_bw_per_way: 85e6,
            read_latency: SimDuration::from_micros(100),
            write_latency: SimDuration::from_micros(300),
            gc_interval_bytes: 4 * GIB,
            gc_pause: SimDuration::from_millis(15),
            seed: 0x55d,
        }
    }
}

/// The flash device model. See the module docs for the behaviours it
/// reproduces.
#[derive(Debug, Clone)]
pub struct Ssd {
    cfg: SsdConfig,
    rng: SimRng,
    in_service: Vec<u64>,
    queue: InternalQueue,
    written_since_gc: u64,
    stats: DeviceStats,
    busy_since: Option<SimTime>,
}

impl Ssd {
    /// Creates a flash device from its configuration.
    pub fn new(cfg: SsdConfig) -> Self {
        assert!(cfg.ways >= 1, "SSD needs at least one channel");
        let rng = SimRng::new(cfg.seed);
        Ssd {
            cfg,
            rng,
            in_service: Vec::new(),
            queue: InternalQueue::default(),
            written_since_gc: 0,
            stats: DeviceStats::default(),
            busy_since: None,
        }
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    fn service_time(&mut self, req: &DeviceRequest) -> SimDuration {
        match req.kind {
            IoKind::Read => {
                self.cfg.read_latency
                    + transfer_time(req.bytes, self.cfg.read_bw_per_way)
            }
            IoKind::Write => {
                self.written_since_gc += req.bytes;
                let mut t = self.cfg.write_latency
                    + transfer_time(req.bytes, self.cfg.write_bw_per_way);
                if self.cfg.gc_interval_bytes > 0
                    && self.written_since_gc >= self.cfg.gc_interval_bytes
                {
                    self.written_since_gc = 0;
                    let jitter = 1.0 + self.rng.range_f64(-0.3, 0.3);
                    t += SimDuration::from_secs_f64(
                        self.cfg.gc_pause.as_secs_f64() * jitter,
                    );
                }
                t
            }
        }
    }

    fn start(&mut self, req: DeviceRequest, now: SimTime, out: &mut Vec<Started>) {
        match req.kind {
            IoKind::Read => self.stats.bytes_read += req.bytes,
            IoKind::Write => self.stats.bytes_written += req.bytes,
        }
        let service = self.service_time(&req);
        self.in_service.push(req.id);
        out.push(Started {
            id: req.id,
            complete_at: now + service,
        });
    }
}

impl Device for Ssd {
    fn submit(&mut self, req: DeviceRequest, now: SimTime, out: &mut Vec<Started>) {
        if self.in_service.is_empty() {
            self.busy_since = Some(now);
        }
        if (self.in_service.len() as u32) < self.cfg.ways {
            self.start(req, now, out);
        } else {
            self.queue.push(req);
        }
    }

    fn on_complete(&mut self, id: u64, now: SimTime, out: &mut Vec<Started>) {
        let pos = self
            .in_service
            .iter()
            .position(|&x| x == id)
            .expect("completion id not in service");
        self.in_service.swap_remove(pos);
        self.stats.completed += 1;
        if let Some(next) = self.queue.pop_front() {
            self.start(next, now, out);
        } else if self.in_service.is_empty() {
            if let Some(since) = self.busy_since.take() {
                self.stats.busy += now - since;
            }
        }
    }

    fn in_service(&self) -> usize {
        self.in_service.len()
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Ssd
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    fn service_floor(&self) -> SimDuration {
        // Reads cost `read_latency + transfer`, writes
        // `write_latency + transfer (+ gc_pause)`: the fixed access
        // latency is always paid, so the smaller of the two bounds every
        // service from below.
        self.cfg.read_latency.min(self.cfg.write_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_simcore::units::MIB;

    fn quiet_cfg() -> SsdConfig {
        SsdConfig {
            gc_interval_bytes: 0,
            ..SsdConfig::default()
        }
    }

    fn read(id: u64, bytes: u64) -> DeviceRequest {
        DeviceRequest {
            id,
            kind: IoKind::Read,
            stream: 1,
            bytes,
        }
    }

    fn write(id: u64, bytes: u64) -> DeviceRequest {
        DeviceRequest {
            id,
            kind: IoKind::Write,
            stream: 1,
            bytes,
        }
    }

    /// Closed-loop run with `depth` outstanding; returns (elapsed, served).
    fn run_closed_loop(
        d: &mut Ssd,
        mk: impl Fn(u64) -> DeviceRequest,
        depth: u64,
        count: u64,
    ) -> SimDuration {
        let mut out = Vec::new();
        let mut next_id = 0;
        for _ in 0..depth.min(count) {
            d.submit(mk(next_id), SimTime::ZERO, &mut out);
            next_id += 1;
        }
        let mut events: Vec<Started> = std::mem::take(&mut out);
        let mut done = 0;
        let mut last = SimTime::ZERO;
        while done < count {
            events.sort_by_key(|s| std::cmp::Reverse(s.complete_at));
            let s = events.pop().expect("deadlock in closed loop");
            last = s.complete_at;
            d.on_complete(s.id, s.complete_at, &mut out);
            done += 1;
            if next_id < count {
                d.submit(mk(next_id), s.complete_at, &mut out);
                next_id += 1;
            }
            events.append(&mut out);
        }
        last - SimTime::ZERO
    }

    #[test]
    fn reads_faster_than_writes() {
        let mut d = Ssd::new(quiet_cfg());
        let tr = run_closed_loop(&mut d, |i| read(i, 4 * MIB), 1, 16);
        let mut d = Ssd::new(quiet_cfg());
        let tw = run_closed_loop(&mut d, |i| write(1000 + i, 4 * MIB), 1, 16);
        assert!(
            tw.as_secs_f64() > 1.4 * tr.as_secs_f64(),
            "write/read asymmetry missing: {tw} vs {tr}"
        );
    }

    #[test]
    fn throughput_grows_until_ways_saturate() {
        let count = 64;
        let t1 = run_closed_loop(&mut Ssd::new(quiet_cfg()), |i| read(i, 4 * MIB), 1, count);
        let t2 = run_closed_loop(&mut Ssd::new(quiet_cfg()), |i| read(i, 4 * MIB), 2, count);
        let t4 = run_closed_loop(&mut Ssd::new(quiet_cfg()), |i| read(i, 4 * MIB), 4, count);
        // depth 2 should halve the elapsed time; depth 4 adds nothing
        // (ways = 2).
        assert!(t2.as_secs_f64() < 0.6 * t1.as_secs_f64(), "{t2} !<< {t1}");
        assert!(
            (t4.as_secs_f64() - t2.as_secs_f64()).abs() < 0.1 * t2.as_secs_f64(),
            "depth beyond ways changed throughput: {t4} vs {t2}"
        );
    }

    #[test]
    fn reads_wait_behind_queued_writes() {
        let mut d = Ssd::new(quiet_cfg());
        let mut out = Vec::new();
        // Fill both channels and the queue with writes, then queue a read.
        for i in 0..6 {
            d.submit(write(i, 4 * MIB), SimTime::ZERO, &mut out);
        }
        d.submit(read(100, 4 * MIB), SimTime::ZERO, &mut out);
        assert_eq!(d.in_service(), 2);
        assert_eq!(d.queued(), 5);
        // Drain: the read must be served last (FIFO).
        let mut events: Vec<Started> = std::mem::take(&mut out);
        let mut last_id = 0;
        while !events.is_empty() {
            events.sort_by_key(|s| std::cmp::Reverse(s.complete_at));
            let s = events.pop().unwrap();
            d.on_complete(s.id, s.complete_at, &mut out);
            last_id = s.id;
            events.append(&mut out);
        }
        assert_eq!(last_id, 100, "read should drain after earlier writes");
    }

    #[test]
    fn gc_pause_charged_periodically() {
        let cfg = SsdConfig {
            gc_interval_bytes: 8 * MIB,
            gc_pause: SimDuration::from_millis(50),
            ..SsdConfig::default()
        };
        let mut d = Ssd::new(cfg);
        let mut out = Vec::new();
        // Two 4 MiB writes cross the 8 MiB threshold on the second.
        d.submit(write(1, 4 * MIB), SimTime::ZERO, &mut out);
        d.submit(write(2, 4 * MIB), SimTime::ZERO, &mut out);
        let s1 = out[0].complete_at - SimTime::ZERO;
        let s2 = out[1].complete_at - SimTime::ZERO;
        assert!(
            s2.as_secs_f64() > s1.as_secs_f64() + 0.030,
            "second write should carry the GC pause: {s1} vs {s2}"
        );
    }

    #[test]
    fn stats_and_kind() {
        let mut d = Ssd::new(quiet_cfg());
        let mut out = Vec::new();
        d.submit(read(1, MIB), SimTime::ZERO, &mut out);
        d.on_complete(1, out[0].complete_at, &mut Vec::new());
        assert_eq!(d.kind(), DeviceKind::Ssd);
        let s = d.stats();
        assert_eq!(s.bytes_read, MIB);
        assert_eq!(s.completed, 1);
    }

    #[test]
    fn service_floor_is_min_access_latency() {
        let d = Ssd::new(quiet_cfg());
        let floor = d.service_floor();
        assert_eq!(
            floor,
            d.config().read_latency.min(d.config().write_latency)
        );
        assert!(floor > SimDuration::ZERO);
        // Even a 1-byte request pays at least the floor.
        let mut d = Ssd::new(quiet_cfg());
        let mut out = Vec::new();
        d.submit(read(1, 1), SimTime::ZERO, &mut out);
        d.submit(write(2, 1), SimTime::ZERO, &mut out);
        for s in &out {
            assert!(s.complete_at - SimTime::ZERO >= floor);
        }
    }
}
