//! Processor-sharing network link.
//!
//! The paper's testbed is Gigabit Ethernet; shuffle pulls and remote
//! replica writes contend on the receiving node's NIC. TCP flows sharing a
//! link approximate *processor sharing*: each of the `n` active transfers
//! progresses at `capacity / n`. [`PsLink`] implements that fluid model
//! exactly: remaining bytes are tracked per transfer and re-scaled whenever
//! the active set changes.
//!
//! Simplification (documented in DESIGN.md): the receiving side is modelled
//! as the bottleneck (shuffle is an in-cast pattern), so each node owns one
//! `PsLink` for its ingress. The paper notes storage generally saturates
//! before the network (§3), and IBIS applies no network-layer control — the
//! same is true here.
//!
//! Because predicted completion times change whenever a transfer joins or
//! leaves, the link hands the engine *epoch-stamped timers*: a timer from
//! an old epoch must be ignored.

use ibis_simcore::{SimDuration, SimTime};

/// A timer the engine must arm: call [`PsLink::on_timer`] at `at` with
/// `epoch`. Timers from superseded epochs are ignored by the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTimer {
    /// When to fire.
    pub at: SimTime,
    /// Epoch stamp; must match the link's current epoch to be acted on.
    pub epoch: u64,
}

#[derive(Debug, Clone)]
struct Transfer {
    id: u64,
    remaining: f64,
    weight: f64,
}

/// Fluid processor-sharing link of fixed capacity.
#[derive(Debug, Clone)]
pub struct PsLink {
    capacity: f64,
    active: Vec<Transfer>,
    last_update: SimTime,
    epoch: u64,
    bytes_done: u64,
}

/// Transfers are considered complete when less than half a byte remains
/// (the fluid model plus nanosecond rounding can leave dust).
const DONE_EPS: f64 = 0.5;

impl PsLink {
    /// Creates a link with `capacity` bytes/sec.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "link capacity must be positive");
        PsLink {
            capacity,
            active: Vec::new(),
            last_update: SimTime::ZERO,
            epoch: 0,
            bytes_done: 0,
        }
    }

    /// Number of in-flight transfers.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// Total bytes fully delivered.
    pub fn bytes_done(&self) -> u64 {
        self.bytes_done
    }

    /// The link's rated capacity, bytes/sec.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    fn weight_sum(&self) -> f64 {
        self.active.iter().map(|t| t.weight).sum()
    }

    fn advance(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_update).as_secs_f64();
        self.last_update = now;
        if elapsed <= 0.0 || self.active.is_empty() {
            return;
        }
        // Weighted processor sharing: flow i progresses at
        // capacity · w_i / Σw. With all weights equal this is exactly the
        // egalitarian PS of TCP flows; distinct weights model the §3
        // future-work network bandwidth control (an OpenFlow stand-in).
        let budget = self.capacity * elapsed / self.weight_sum();
        for t in &mut self.active {
            t.remaining -= budget * t.weight;
        }
    }

    fn next_timer(&mut self, now: SimTime) -> Option<LinkTimer> {
        let wsum = self.weight_sum();
        let min_secs = self
            .active
            .iter()
            .map(|t| t.remaining.max(0.0) * wsum / (self.capacity * t.weight))
            .fold(f64::INFINITY, f64::min);
        if !min_secs.is_finite() {
            return None;
        }
        let dt = SimDuration::from_secs_f64(min_secs).max(SimDuration::from_nanos(1));
        self.epoch += 1;
        Some(LinkTimer {
            at: now + dt,
            epoch: self.epoch,
        })
    }

    /// Begins a transfer of `bytes` identified by `id`. Returns the timer
    /// to arm (always `Some`: the new transfer is active). Any previously
    /// armed timer is superseded.
    pub fn start(&mut self, id: u64, bytes: u64, now: SimTime) -> LinkTimer {
        self.start_weighted(id, bytes, 1.0, now)
    }

    /// Like [`PsLink::start`] but with a share weight — the network-layer
    /// bandwidth control the paper defers to future work (§3).
    pub fn start_weighted(&mut self, id: u64, bytes: u64, weight: f64, now: SimTime) -> LinkTimer {
        assert!(weight > 0.0, "transfer weight must be positive");
        self.advance(now);
        self.active.push(Transfer {
            id,
            remaining: (bytes as f64).max(1.0),
            weight,
        });
        self.next_timer(now).expect("just added a transfer")
    }

    /// Timer callback. Returns the ids of transfers that completed and the
    /// next timer to arm, if any transfers remain. A stale `epoch` returns
    /// `(empty, None)` — the engine simply drops it.
    pub fn on_timer(&mut self, now: SimTime, epoch: u64) -> (Vec<u64>, Option<LinkTimer>) {
        let mut finished = Vec::new();
        let timer = self.on_timer_into(now, epoch, &mut finished);
        (finished, timer)
    }

    /// Allocation-free [`PsLink::on_timer`]: completed transfer ids are
    /// appended to the caller-owned `finished` (not cleared first), so a
    /// hot loop can reuse one buffer across timers.
    pub fn on_timer_into(
        &mut self,
        now: SimTime,
        epoch: u64,
        finished: &mut Vec<u64>,
    ) -> Option<LinkTimer> {
        if epoch != self.epoch {
            return None;
        }
        self.advance(now);
        self.active.retain(|t| {
            if t.remaining <= DONE_EPS {
                finished.push(t.id);
                false
            } else {
                true
            }
        });
        if self.active.is_empty() {
            self.epoch += 1; // invalidate anything outstanding
            None
        } else {
            self.next_timer(now)
        }
    }

    /// Like [`PsLink::start`] but also counts `bytes` toward
    /// [`PsLink::bytes_done`] (delivery is guaranteed in the fluid model,
    /// so counting at admission is exact once the run drains).
    pub fn start_counted(&mut self, id: u64, bytes: u64, now: SimTime) -> LinkTimer {
        self.bytes_done += bytes;
        self.start(id, bytes, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1_000_000;

    /// Engine stub: runs the link until idle, returning (id, time) pairs.
    fn drain(link: &mut PsLink, mut timer: Option<LinkTimer>) -> Vec<(u64, SimTime)> {
        let mut done = Vec::new();
        while let Some(t) = timer {
            let (finished, next) = link.on_timer(t.at, t.epoch);
            for id in finished {
                done.push((id, t.at));
            }
            timer = next;
        }
        done
    }

    #[test]
    fn single_transfer_takes_bytes_over_capacity() {
        let mut link = PsLink::new(125e6); // GigE
        let timer = link.start(1, 125 * MB, SimTime::ZERO);
        let done = drain(&mut link, Some(timer));
        assert_eq!(done.len(), 1);
        let t = done[0].1.as_secs_f64();
        assert!((t - 1.0).abs() < 1e-6, "elapsed {t}");
    }

    #[test]
    fn two_equal_transfers_share_capacity() {
        let mut link = PsLink::new(100e6);
        link.start(1, 100 * MB, SimTime::ZERO);
        let timer = link.start(2, 100 * MB, SimTime::ZERO);
        let done = drain(&mut link, Some(timer));
        assert_eq!(done.len(), 2);
        // Both finish together at 2 s (each got 50 MB/s).
        for (_, at) in &done {
            assert!((at.as_secs_f64() - 2.0).abs() < 1e-6, "at {at}");
        }
    }

    #[test]
    fn late_joiner_slows_the_first() {
        let mut link = PsLink::new(100e6);
        let t1 = link.start(1, 100 * MB, SimTime::ZERO);
        // 0.5 s in, transfer 1 has 50 MB left; transfer 2 joins with 50 MB.
        let _stale = t1;
        let timer = link.start(2, 50 * MB, SimTime::from_millis(500));
        let done = drain(&mut link, Some(timer));
        assert_eq!(done.len(), 2);
        // Remaining 50+50 MB at 50 MB/s each → both done at 1.5 s.
        for (_, at) in &done {
            assert!((at.as_secs_f64() - 1.5).abs() < 1e-6, "at {at}");
        }
    }

    #[test]
    fn stale_timer_ignored() {
        let mut link = PsLink::new(100e6);
        let t1 = link.start(1, 100 * MB, SimTime::ZERO);
        let _t2 = link.start(2, 100 * MB, SimTime::ZERO); // supersedes t1
        let (finished, next) = link.on_timer(t1.at, t1.epoch);
        assert!(finished.is_empty());
        assert!(next.is_none());
        assert_eq!(link.active(), 2);
    }

    #[test]
    fn unequal_sizes_finish_in_order() {
        let mut link = PsLink::new(100e6);
        link.start(1, 10 * MB, SimTime::ZERO);
        let timer = link.start(2, 100 * MB, SimTime::ZERO);
        let done = drain(&mut link, Some(timer));
        assert_eq!(done[0].0, 1);
        assert_eq!(done[1].0, 2);
        // Flow 1: 10 MB at 50 MB/s → 0.2 s. Then flow 2 alone:
        // 100 - 10 = 90 MB left, 0.2 + 0.9 = 1.1 s.
        assert!((done[0].1.as_secs_f64() - 0.2).abs() < 1e-6);
        assert!((done[1].1.as_secs_f64() - 1.1).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut link = PsLink::new(100e6);
        let timer = link.start(1, 0, SimTime::ZERO);
        let done = drain(&mut link, Some(timer));
        assert_eq!(done.len(), 1);
        assert!(done[0].1.as_secs_f64() < 1e-6);
    }

    #[test]
    fn bytes_done_counts_admitted_bytes() {
        let mut link = PsLink::new(100e6);
        let timer = link.start_counted(1, 7 * MB, SimTime::ZERO);
        drain(&mut link, Some(timer));
        assert_eq!(link.bytes_done(), 7 * MB);
    }

    #[test]
    fn weighted_shares_split_capacity() {
        // weights 3:1 on equal sizes: the heavy flow finishes first, and
        // at that instant has delivered 3x the light flow's bytes.
        let mut link = PsLink::new(100e6);
        link.start_weighted(1, 75 * MB, 3.0, SimTime::ZERO);
        let timer = link.start_weighted(2, 75 * MB, 1.0, SimTime::ZERO);
        let done = drain(&mut link, Some(timer));
        assert_eq!(done[0].0, 1);
        // Flow 1 at 75 MB/s → done at 1.0 s; flow 2 then alone with
        // 75 − 25 = 50 MB left → 1.0 + 0.5 = 1.5 s.
        assert!((done[0].1.as_secs_f64() - 1.0).abs() < 1e-6, "{:?}", done);
        assert!((done[1].1.as_secs_f64() - 1.5).abs() < 1e-6, "{:?}", done);
    }

    #[test]
    fn weight_one_matches_plain_start() {
        let run = |weighted: bool| {
            let mut link = PsLink::new(100e6);
            let timer = if weighted {
                link.start(1, 10 * MB, SimTime::ZERO);
                link.start_weighted(2, 10 * MB, 1.0, SimTime::ZERO)
            } else {
                link.start(1, 10 * MB, SimTime::ZERO);
                link.start(2, 10 * MB, SimTime::ZERO)
            };
            drain(&mut link, Some(timer))
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn throughput_conserved_under_churn() {
        // n staggered transfers: total bytes / makespan == capacity when the
        // link never idles.
        let mut link = PsLink::new(100e6);
        let mut timer = None;
        for i in 0..10 {
            timer = Some(link.start(i, 50 * MB, SimTime::ZERO));
        }
        let done = drain(&mut link, timer);
        let last = done.iter().map(|&(_, at)| at).max().unwrap();
        let total = 10.0 * 50.0 * MB as f64;
        let rate = total / last.as_secs_f64();
        assert!((rate - 100e6).abs() / 100e6 < 1e-3, "rate {rate}");
    }
}
