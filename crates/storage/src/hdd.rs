//! Positional rotating-disk model.
//!
//! Reproduces the four HDD behaviours the paper's evaluation depends on:
//!
//! 1. **Sequential vs interleaved throughput.** Each request carries a
//!    `stream` key; serving a request from a different stream than the last
//!    one pays a seek plus rotational delay. Interleaving two sequential
//!    workloads therefore costs real bandwidth, exactly the contention the
//!    motivating examples (§2.3) show.
//! 2. **Throughput grows with queue depth.** The disk services one request
//!    at a time but, like the anticipatory/CFQ schedulers in the paper's
//!    Linux testbed, it prefers a queued request from the *current* stream
//!    (bounded by `batch_limit` to avoid starvation). A deeper internal
//!    queue gives the disk more chances to batch, so utilisation rises with
//!    D — the SFQ(D) fairness/utilisation trade-off of §4.
//! 3. **Latency grows with queue depth.** FIFO admission means a new
//!    request waits behind the outstanding ones; this is the signal the
//!    SFQ(D2) controller feeds on.
//! 4. **Write-back cache flush spikes.** Writes are absorbed at memory
//!    speed while the dirty set is under `dirty_limit` and drain in the
//!    background; periodically the page cache forces a foreground flush
//!    that stalls the device — the latency spikes at ~260 s and ~790 s in
//!    Fig. 7. Even once the cache is full and writes run at disk speed,
//!    the flusher coalesces them into large sequential extents, so writes
//!    carry no per-request seek cost (only reads are positional).

use crate::device::{Device, DeviceKind, DeviceStats, InternalQueue};
use crate::request::{DeviceRequest, IoKind, Started};
use ibis_simcore::rng::SimRng;
use ibis_simcore::units::{transfer_time, MIB};
use ibis_simcore::{SimDuration, SimTime};

/// Configuration of the rotating-disk model. Defaults approximate the
/// paper's 500 GB 7.2K RPM SAS drives.
#[derive(Debug, Clone)]
pub struct HddConfig {
    /// Sequential read bandwidth, bytes/sec.
    pub seq_read_bw: f64,
    /// Sequential write bandwidth, bytes/sec.
    pub seq_write_bw: f64,
    /// Average seek time when switching streams.
    pub seek_time: SimDuration,
    /// Seek jitter as a fraction of `seek_time` (uniform ±).
    pub seek_jitter: f64,
    /// Full rotational period (7200 RPM → 8.33 ms); the model adds a
    /// uniform [0, period) rotational delay on each seek.
    pub rotational_period: SimDuration,
    /// Maximum consecutive same-stream services before the disk must take
    /// the FIFO head (anticipatory batching bound).
    pub batch_limit: u32,
    /// Memory bandwidth at which the write-back cache absorbs writes.
    pub cache_bw: f64,
    /// Dirty-byte limit of the write-back cache; above it writes go at
    /// disk speed.
    pub dirty_limit: u64,
    /// Background drain rate of dirty bytes, bytes/sec.
    pub drain_bw: f64,
    /// Period between foreground page-cache flushes (Fig. 7 spikes).
    /// `SimDuration::MAX` disables them.
    pub flush_interval: SimDuration,
    /// Cap on the stall one foreground flush may impose.
    pub flush_max_stall: SimDuration,
    /// RNG seed for seek jitter and rotational phase.
    pub seed: u64,
}

impl Default for HddConfig {
    fn default() -> Self {
        HddConfig {
            seq_read_bw: 140e6,
            seq_write_bw: 130e6,
            seek_time: SimDuration::from_micros(7_500),
            seek_jitter: 0.4,
            rotational_period: SimDuration::from_micros(8_333),
            batch_limit: 12,
            cache_bw: 2e9,
            dirty_limit: 256 * MIB,
            drain_bw: 40e6,
            flush_interval: SimDuration::from_secs(500),
            flush_max_stall: SimDuration::from_secs(3),
            seed: 0x1b15,
        }
    }
}

/// The rotating-disk device model. See the module docs for the behaviours
/// it reproduces.
#[derive(Debug, Clone)]
pub struct Hdd {
    cfg: HddConfig,
    rng: SimRng,
    /// The single request in service, if any.
    in_service: Option<u64>,
    queue: InternalQueue,
    /// Stream served by the last disk-touching request.
    head_stream: Option<u64>,
    batch_run: u32,
    /// Write-back cache state.
    dirty: u64,
    last_drain: SimTime,
    next_flush: SimTime,
    stats: DeviceStats,
    busy_since: Option<SimTime>,
}

impl Hdd {
    /// Creates a disk from its configuration.
    pub fn new(cfg: HddConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed);
        let first_flush = if cfg.flush_interval == SimDuration::MAX {
            SimTime::MAX
        } else {
            // Stagger the first flush so co-located disks don't spike in
            // lock-step.
            SimTime::ZERO
                + cfg.flush_interval
                + SimDuration::from_secs_f64(
                    rng.range_f64(0.0, 0.2) * cfg.flush_interval.as_secs_f64(),
                )
        };
        Hdd {
            cfg,
            rng,
            in_service: None,
            queue: InternalQueue::default(),
            head_stream: None,
            batch_run: 0,
            dirty: 0,
            last_drain: SimTime::ZERO,
            next_flush: first_flush,
            stats: DeviceStats::default(),
            busy_since: None,
        }
    }

    /// Current dirty bytes in the write-back cache (for tests/reports).
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty
    }

    /// The configuration this disk was built with.
    pub fn config(&self) -> &HddConfig {
        &self.cfg
    }

    fn drain_dirty(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_drain);
        self.last_drain = now;
        let drained = (self.cfg.drain_bw * elapsed.as_secs_f64()) as u64;
        self.dirty = self.dirty.saturating_sub(drained);
    }

    fn positional_cost(&mut self, stream: u64) -> SimDuration {
        if self.head_stream == Some(stream) {
            return SimDuration::ZERO;
        }
        let jitter = self
            .rng
            .range_f64(-self.cfg.seek_jitter, self.cfg.seek_jitter);
        let seek = SimDuration::from_secs_f64(
            self.cfg.seek_time.as_secs_f64() * (1.0 + jitter),
        );
        let rot = SimDuration::from_secs_f64(
            self.rng.f64() * self.cfg.rotational_period.as_secs_f64(),
        );
        seek + rot
    }

    /// Computes the service time for `req` starting at `now`, updating the
    /// cache and positional state.
    fn service_time(&mut self, req: &DeviceRequest, now: SimTime) -> SimDuration {
        self.drain_dirty(now);

        // Periodic foreground flush: the first service to start after the
        // deadline pays the stall.
        let mut flush_stall = SimDuration::ZERO;
        if now >= self.next_flush {
            let drain_all = transfer_time(self.dirty, self.cfg.seq_write_bw);
            flush_stall = drain_all.min(self.cfg.flush_max_stall);
            self.dirty = 0;
            let jitter = 1.0 + self.rng.range_f64(-0.1, 0.1);
            self.next_flush = now
                + SimDuration::from_secs_f64(
                    self.cfg.flush_interval.as_secs_f64() * jitter,
                );
        }

        let base = match req.kind {
            IoKind::Write if self.dirty + req.bytes <= self.cfg.dirty_limit => {
                // Absorbed by the write-back cache; the head does not move.
                self.dirty += req.bytes;
                transfer_time(req.bytes, self.cfg.cache_bw)
            }
            IoKind::Write => {
                // Disk-speed writes still flow through the write-back
                // cache: the flusher coalesces dirty pages into large
                // sequential extents, so per-request positional costs are
                // negligible — but the flusher does move the head, so the
                // next read pays a seek.
                self.head_stream = None;
                transfer_time(req.bytes, self.cfg.seq_write_bw)
            }
            IoKind::Read => {
                let pos = self.positional_cost(req.stream);
                self.head_stream = Some(req.stream);
                pos + transfer_time(req.bytes, self.cfg.seq_read_bw)
            }
        };
        flush_stall + base
    }

    fn start(&mut self, req: DeviceRequest, now: SimTime, out: &mut Vec<Started>) {
        match req.kind {
            IoKind::Read => self.stats.bytes_read += req.bytes,
            IoKind::Write => self.stats.bytes_written += req.bytes,
        }
        let service = self.service_time(&req, now);
        self.in_service = Some(req.id);
        out.push(Started {
            id: req.id,
            complete_at: now + service,
        });
    }

    /// Picks the next queued request: same-stream batching bounded by
    /// `batch_limit`, else FIFO head.
    fn select_next(&mut self) -> Option<DeviceRequest> {
        if let Some(stream) = self.head_stream {
            if self.batch_run < self.cfg.batch_limit {
                if let Some(req) = self.queue.pop_stream(stream) {
                    self.batch_run += 1;
                    return Some(req);
                }
            }
        }
        self.batch_run = 0;
        self.queue.pop_front()
    }
}

impl Device for Hdd {
    fn submit(&mut self, req: DeviceRequest, now: SimTime, out: &mut Vec<Started>) {
        if self.in_service.is_none() {
            self.busy_since = Some(now);
            self.batch_run = 0;
            self.start(req, now, out);
        } else {
            self.queue.push(req);
        }
    }

    fn on_complete(&mut self, id: u64, now: SimTime, out: &mut Vec<Started>) {
        debug_assert_eq!(self.in_service, Some(id), "completion id mismatch");
        self.in_service = None;
        self.stats.completed += 1;
        if let Some(req) = self.select_next() {
            self.start(req, now, out);
        } else if let Some(since) = self.busy_since.take() {
            self.stats.busy += now - since;
        }
    }

    fn in_service(&self) -> usize {
        usize::from(self.in_service.is_some())
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Hdd
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    // `service_floor` stays at the trait default of zero: a write
    // absorbed by the write-back cache is serviced in
    // `bytes / cache_bw`, which has no fixed lower bound, so the HDD
    // offers no usable lookahead (DESIGN.md §14 degrades to serial
    // windows on HDD-backed devices).
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_simcore::units::GIB;

    fn quiet_cfg() -> HddConfig {
        HddConfig {
            flush_interval: SimDuration::MAX,
            ..HddConfig::default()
        }
    }

    fn read(id: u64, stream: u64, bytes: u64) -> DeviceRequest {
        DeviceRequest {
            id,
            kind: IoKind::Read,
            stream,
            bytes,
        }
    }

    fn write(id: u64, stream: u64, bytes: u64) -> DeviceRequest {
        DeviceRequest {
            id,
            kind: IoKind::Write,
            stream,
            bytes,
        }
    }

    /// Drives the disk with `reqs` one outstanding at a time; returns total
    /// elapsed time.
    fn run_serial(d: &mut Hdd, reqs: Vec<DeviceRequest>) -> SimDuration {
        let mut now = SimTime::ZERO;
        let mut out = Vec::new();
        for r in reqs {
            out.clear();
            let id = r.id;
            d.submit(r, now, &mut out);
            assert_eq!(out.len(), 1);
            now = out[0].complete_at;
            out.clear();
            d.on_complete(id, now, &mut out);
            assert!(out.is_empty());
        }
        now - SimTime::ZERO
    }

    #[test]
    fn sequential_reads_hit_full_bandwidth() {
        let mut d = Hdd::new(quiet_cfg());
        let n = 64u64;
        let total = run_serial(
            &mut d,
            (0..n).map(|i| read(i, 1, 4 * MIB)).collect(),
        );
        let bw = (n * 4 * MIB) as f64 / total.as_secs_f64();
        // One initial seek amortised over 64 requests: ≥ 95 % of rated bw.
        assert!(bw > 0.95 * 140e6, "sequential bw {bw}");
    }

    #[test]
    fn interleaved_streams_lose_bandwidth_to_seeks() {
        let mut d = Hdd::new(quiet_cfg());
        let n = 64u64;
        // strict alternation: stream 1, 2, 1, 2, ...
        let total = run_serial(
            &mut d,
            (0..n).map(|i| read(i, 1 + i % 2, 4 * MIB)).collect(),
        );
        let bw = (n * 4 * MIB) as f64 / total.as_secs_f64();
        assert!(
            bw < 0.85 * 140e6,
            "interleaved bw {bw} should be well below sequential"
        );
    }

    #[test]
    fn batching_recovers_bandwidth_under_depth() {
        // With both streams queued deeply, the anticipatory batcher should
        // serve runs of each and approach sequential bandwidth.
        let mut d = Hdd::new(quiet_cfg());
        let mut out = Vec::new();
        let n = 128u64;
        for i in 0..n {
            d.submit(read(i, 1 + i % 2, 4 * MIB), SimTime::ZERO, &mut out);
        }
        // engine loop
        let mut completed = 0;
        let mut last = SimTime::ZERO;
        while let Some(s) = out.pop() {
            last = s.complete_at;
            d.on_complete(s.id, s.complete_at, &mut out);
            completed += 1;
        }
        assert_eq!(completed, n);
        let bw = (n * 4 * MIB) as f64 / (last - SimTime::ZERO).as_secs_f64();
        assert!(bw > 0.9 * 140e6, "batched bw {bw}");
    }

    #[test]
    fn writes_absorbed_until_dirty_limit() {
        let mut d = Hdd::new(quiet_cfg());
        let mut out = Vec::new();
        // 4 MiB write absorbed at cache speed: ~2 ms, far below disk time.
        d.submit(write(1, 1, 4 * MIB), SimTime::ZERO, &mut out);
        let fast = out[0].complete_at - SimTime::ZERO;
        assert!(fast < SimDuration::from_millis(5), "absorbed write {fast}");
        assert_eq!(d.dirty_bytes(), 4 * MIB);
    }

    #[test]
    fn writes_slow_to_disk_speed_when_cache_full() {
        let cfg = HddConfig {
            dirty_limit: 8 * MIB,
            drain_bw: 0.0,
            ..quiet_cfg()
        };
        let mut d = Hdd::new(cfg);
        // Fill the cache (2 × 4 MiB), then the next write must hit the disk.
        run_serial(&mut d, vec![write(1, 1, 4 * MIB), write(2, 1, 4 * MIB)]);
        let mut out = Vec::new();
        d.submit(write(3, 1, 4 * MIB), SimTime::from_secs(1), &mut out);
        let service = out[0].complete_at - SimTime::from_secs(1);
        // 4 MiB at 130 MB/s ≈ 32 ms (plus seek)
        assert!(
            service > SimDuration::from_millis(25),
            "disk-speed write took only {service}"
        );
    }

    #[test]
    fn dirty_drains_over_time() {
        let cfg = HddConfig {
            drain_bw: 10e6,
            ..quiet_cfg()
        };
        let mut d = Hdd::new(cfg);
        let mut out = Vec::new();
        d.submit(write(1, 1, 8 * MIB), SimTime::ZERO, &mut out);
        d.on_complete(1, out[0].complete_at, &mut Vec::new());
        assert_eq!(d.dirty_bytes(), 8 * MIB);
        // After 1 s, ~10 MB should have drained (more than 8 MiB).
        out.clear();
        d.submit(read(2, 1, MIB), SimTime::from_secs(2), &mut out);
        assert_eq!(d.dirty_bytes(), 0);
    }

    #[test]
    fn periodic_flush_stalls_service() {
        let cfg = HddConfig {
            flush_interval: SimDuration::from_secs(10),
            flush_max_stall: SimDuration::from_secs(2),
            drain_bw: 0.0,
            ..HddConfig::default()
        };
        let mut d = Hdd::new(cfg);
        // Build up dirty bytes.
        run_serial(&mut d, vec![write(1, 1, 100 * MIB)]);
        assert!(d.dirty_bytes() > 0);
        // A read far past the flush deadline pays the stall.
        let mut out = Vec::new();
        d.submit(read(2, 1, MIB), SimTime::from_secs(30), &mut out);
        let service = out[0].complete_at - SimTime::from_secs(30);
        assert!(
            service > SimDuration::from_millis(500),
            "flush stall missing: {service}"
        );
        assert_eq!(d.dirty_bytes(), 0);
    }

    #[test]
    fn queueing_latency_grows_with_outstanding() {
        let mut d = Hdd::new(quiet_cfg());
        let mut out = Vec::new();
        for i in 0..8 {
            d.submit(read(i, 1, 4 * MIB), SimTime::ZERO, &mut out);
        }
        assert_eq!(d.in_service(), 1);
        assert_eq!(d.queued(), 7);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Hdd::new(quiet_cfg());
        run_serial(&mut d, vec![read(1, 1, MIB), write(2, 1, MIB)]);
        let s = d.stats();
        assert_eq!(s.bytes_read, MIB);
        assert_eq!(s.bytes_written, MIB);
        assert_eq!(s.completed, 2);
        assert!(s.busy > SimDuration::ZERO);
    }

    #[test]
    fn batch_limit_prevents_starvation() {
        let cfg = HddConfig {
            batch_limit: 4,
            ..quiet_cfg()
        };
        let mut d = Hdd::new(cfg);
        let mut out = Vec::new();
        // Stream 1 starts with two requests and keeps refilling (a closed
        // loop, like an I/O-bound task); stream 2 queues one request early.
        d.submit(read(0, 1, 4 * MIB), SimTime::ZERO, &mut out);
        d.submit(read(1, 1, 4 * MIB), SimTime::ZERO, &mut out);
        d.submit(read(100, 2, 4 * MIB), SimTime::ZERO, &mut out);
        let mut order = Vec::new();
        let mut next_id = 2;
        while let Some(s) = out.pop() {
            order.push(s.id);
            if order.len() > 20 {
                break;
            }
            // refill stream 1 so batching always has a same-stream option
            if s.id != 100 {
                d.submit(read(next_id, 1, 4 * MIB), s.complete_at, &mut out);
                next_id += 1;
            }
            d.on_complete(s.id, s.complete_at, &mut out);
        }
        let pos = order.iter().position(|&id| id == 100).unwrap();
        // Without the batch limit, continuously refilled stream 1 would be
        // preferred forever; with batch_limit = 4 the stranger is reached
        // after at most one full batch run.
        assert!(
            (1..=6).contains(&pos),
            "stream 2 served at position {pos}, expected within one batch run"
        );
    }

    #[test]
    fn write_cache_is_never_charged_a_seek() {
        // Absorbed writes interleaved with reads must not degrade the read
        // stream's sequentiality.
        let mut d = Hdd::new(HddConfig {
            dirty_limit: GIB,
            ..quiet_cfg()
        });
        let n = 32u64;
        let mut reqs = Vec::new();
        for i in 0..n {
            reqs.push(read(2 * i, 1, 4 * MIB));
            reqs.push(write(2 * i + 1, 999, 64 * 1024));
        }
        let total = run_serial(&mut d, reqs);
        let read_bytes = n * 4 * MIB;
        let bw = read_bytes as f64 / total.as_secs_f64();
        assert!(bw > 0.9 * 140e6, "reads degraded by absorbed writes: {bw}");
    }
}
