//! # ibis-storage — storage device and network substrate models
//!
//! The paper evaluates IBIS on a physical cluster (two 7.2K RPM SAS disks
//! or Intel MLC SSDs per node, Gigabit Ethernet). This crate provides the
//! simulated equivalents with the properties the paper's results depend on:
//!
//! * [`hdd::Hdd`] — positional disk model: per-stream sequentiality
//!   tracking, seek + rotational costs when switching streams, bounded
//!   same-stream batching (an anticipatory-scheduler stand-in, which is
//!   what makes device throughput *grow* with queue depth), and a
//!   write-back cache whose periodic foreground flushes reproduce the
//!   latency spikes of Fig. 7.
//! * [`ssd::Ssd`] — flash model: channel parallelism, strong read/write
//!   asymmetry, and an optional garbage-collection stall, reproducing the
//!   "writes slow down queued reads" behaviour of §7.2's SSD experiment.
//! * [`link::PsLink`] — a processor-sharing network link used for shuffle
//!   and remote-replica traffic.
//! * [`profile`] — the paper's offline reference-latency profiling
//!   procedure (§4): drive a device at increasing concurrency, find the
//!   latency just before throughput saturates.
//!
//! Devices are *passive*: the simulation engine owns the clock and the
//! event queue; a device maps `submit`/`on_complete` calls to completion
//! timestamps.

#![warn(missing_docs)]

pub mod device;
pub mod hdd;
pub mod link;
pub mod profile;
pub mod request;
pub mod ssd;

pub use device::{Device, DeviceKind, DeviceModel};
pub use hdd::{Hdd, HddConfig};
pub use link::PsLink;
pub use profile::{profile_device, ReferenceLatency};
pub use request::{DeviceRequest, IoKind, Started};
pub use ssd::{Ssd, SsdConfig};
