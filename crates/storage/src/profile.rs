//! Offline device profiling — the paper's §4 procedure for choosing the
//! SFQ(D2) controller's reference latency:
//!
//! > "The reference latency is decided offline by profiling the storage
//! > using a synthetic MapReduce workload with increasing I/O concurrency.
//! > Both the I/O latency and throughput are measured during the profiling,
//! > and the I/O latency observed before the storage starts to saturate is
//! > the reference latency for the controller. [...] If the storage's read
//! > and write performance are asymmetric such as in SSDs, the profiling
//! > can give separate reference latencies for reads and writes."
//!
//! [`profile_device`] drives a device clone at each candidate depth with a
//! closed-loop workload of `streams` concurrent sequential streams (the
//! synthetic stand-in for concurrent MapReduce tasks), measures steady-state
//! mean latency and aggregate throughput, and picks the latency at the
//! smallest depth that achieves the saturation throughput (within
//! `SATURATION_TOLERANCE`).

use crate::device::{Device, DeviceModel};
use crate::request::{DeviceRequest, IoKind, Started};
use ibis_simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// One measured point of the concurrency sweep.
#[derive(Debug, Clone, Copy)]
pub struct ProfilePoint {
    /// Outstanding-request depth used.
    pub depth: u32,
    /// Steady-state mean request latency.
    pub latency: SimDuration,
    /// Steady-state aggregate throughput, bytes/sec.
    pub throughput: f64,
}

/// Result of profiling a device: per-direction reference latencies plus
/// the full sweep curves for reports.
#[derive(Debug, Clone)]
pub struct ReferenceLatency {
    /// Reference latency for reads.
    pub read: SimDuration,
    /// Reference latency for writes.
    pub write: SimDuration,
    /// The read sweep.
    pub read_curve: Vec<ProfilePoint>,
    /// The write sweep.
    pub write_curve: Vec<ProfilePoint>,
}

/// Closed-loop fixed-depth run; returns the steady-state (latency,
/// throughput) measured over the second half of `count` requests.
fn run_fixed_depth(
    device: &DeviceModel,
    kind: IoKind,
    depth: u32,
    streams: u64,
    chunk: u64,
    count: u64,
) -> (SimDuration, f64) {
    let mut dev = device.clone();
    let mut outstanding: HashMap<u64, SimTime> = HashMap::new();
    let mut events: Vec<Started> = Vec::new();
    let mut out = Vec::new();
    let mut next_id: u64 = 0;
    let submit = |dev: &mut DeviceModel,
                      now: SimTime,
                      next_id: &mut u64,
                      outstanding: &mut HashMap<u64, SimTime>,
                      out: &mut Vec<Started>| {
        let id = *next_id;
        *next_id += 1;
        outstanding.insert(id, now);
        dev.submit(
            DeviceRequest {
                id,
                kind,
                stream: id % streams,
                bytes: chunk,
            },
            now,
            out,
        );
    };

    for _ in 0..depth.min(count as u32) {
        submit(&mut dev, SimTime::ZERO, &mut next_id, &mut outstanding, &mut out);
    }
    events.append(&mut out);

    let warmup = count / 2;
    let mut done: u64 = 0;
    let mut measured_bytes: u64 = 0;
    let mut measured_latency = SimDuration::ZERO;
    let mut measured_count: u64 = 0;
    let mut measure_start = SimTime::ZERO;
    let mut last = SimTime::ZERO;

    while done < count {
        // earliest event next (linear scan: depth is small)
        let idx = events
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.complete_at)
            .map(|(i, _)| i)
            .expect("closed loop starved");
        let s = events.swap_remove(idx);
        let submitted = outstanding.remove(&s.id).expect("unknown completion");
        dev.on_complete(s.id, s.complete_at, &mut out);
        done += 1;
        last = s.complete_at;
        if done == warmup {
            measure_start = s.complete_at;
        } else if done > warmup {
            measured_bytes += chunk;
            measured_latency += s.complete_at - submitted;
            measured_count += 1;
        }
        if next_id < count {
            submit(&mut dev, s.complete_at, &mut next_id, &mut outstanding, &mut out);
        }
        events.append(&mut out);
    }

    let span = (last - measure_start).as_secs_f64();
    let throughput = if span > 0.0 {
        measured_bytes as f64 / span
    } else {
        0.0
    };
    let latency = if measured_count > 0 {
        measured_latency / measured_count
    } else {
        SimDuration::ZERO
    };
    (latency, throughput)
}

fn sweep(
    device: &DeviceModel,
    kind: IoKind,
    depths: &[u32],
    streams: u64,
    chunk: u64,
    count: u64,
) -> Vec<ProfilePoint> {
    depths
        .iter()
        .map(|&depth| {
            let (latency, throughput) =
                run_fixed_depth(device, kind, depth, streams, chunk, count);
            ProfilePoint {
                depth,
                latency,
                throughput,
            }
        })
        .collect()
}

/// "The latency observed before the storage starts to saturate": the
/// latency at the first depth where the *next* step of concurrency stops
/// buying a significant throughput gain. Latency grows roughly linearly
/// with depth while throughput flattens, so stopping at the first flat
/// step keeps the reference at the fair end of the fairness/utilisation
/// trade-off — deeper queues are then something the controller must *earn*
/// with below-reference latency, exactly the behaviour §7.2 describes.
fn knee_latency(curve: &[ProfilePoint]) -> SimDuration {
    if curve.is_empty() {
        return SimDuration::from_millis(10);
    }
    for w in curve.windows(2) {
        if w[1].throughput < SATURATION_TOLERANCE_GAIN * w[0].throughput {
            return w[0].latency;
        }
    }
    curve[curve.len() - 1].latency
}

/// Minimum relative throughput gain for one more depth step to count as
/// "not yet saturated".
const SATURATION_TOLERANCE_GAIN: f64 = 1.05;

/// Profiles `device` (by cloning it for each run — the device passed in is
/// not mutated) and returns per-direction reference latencies. `streams`
/// concurrent sequential streams model concurrent MapReduce tasks; `chunk`
/// is the per-request size the schedulers will see.
pub fn profile_device(device: &DeviceModel, streams: u64, chunk: u64) -> ReferenceLatency {
    let depths = [1, 2, 3, 4, 6, 8, 10, 12, 16];
    // Enough requests per point that the steady-state half dominates cache
    // warmup on write sweeps.
    let count = 600;
    let read_curve = sweep(device, IoKind::Read, &depths, streams, chunk, count);
    let write_curve = sweep(device, IoKind::Write, &depths, streams, chunk, count);
    ReferenceLatency {
        read: knee_latency(&read_curve),
        write: knee_latency(&write_curve),
        read_curve,
        write_curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Ideal;
    use crate::hdd::{Hdd, HddConfig};
    use crate::ssd::{Ssd, SsdConfig};
    use ibis_simcore::units::MIB;

    fn quiet_hdd() -> DeviceModel {
        DeviceModel::Hdd(Hdd::new(HddConfig {
            flush_interval: SimDuration::MAX,
            ..HddConfig::default()
        }))
    }

    #[test]
    fn hdd_read_throughput_grows_with_depth() {
        let dev = quiet_hdd();
        let curve = sweep(&dev, IoKind::Read, &[1, 4, 12], 4, 4 * MIB, 400);
        assert!(
            curve[2].throughput > 1.05 * curve[0].throughput,
            "no depth gain: {} vs {}",
            curve[0].throughput,
            curve[2].throughput
        );
    }

    #[test]
    fn hdd_latency_grows_with_depth() {
        let dev = quiet_hdd();
        let curve = sweep(&dev, IoKind::Read, &[1, 8], 4, 4 * MIB, 400);
        assert!(curve[1].latency > curve[0].latency * 4);
    }

    #[test]
    fn profile_returns_positive_references() {
        let refs = profile_device(&quiet_hdd(), 4, 4 * MIB);
        assert!(refs.read > SimDuration::ZERO);
        assert!(refs.write > SimDuration::ZERO);
        assert_eq!(refs.read_curve.len(), 9);
    }

    #[test]
    fn ssd_write_reference_exceeds_read_reference() {
        let dev = DeviceModel::Ssd(Ssd::new(SsdConfig {
            gc_interval_bytes: 0,
            ..SsdConfig::default()
        }));
        let refs = profile_device(&dev, 4, 4 * MIB);
        assert!(
            refs.write > refs.read,
            "SSD asymmetry not reflected: read {} write {}",
            refs.read,
            refs.write
        );
    }

    #[test]
    fn ideal_device_saturates_at_depth_one() {
        // An ideal device has no queueing: every depth hits the same
        // throughput per request, so the knee is the first point.
        let dev = DeviceModel::Ideal(Ideal::new(200e6, SimDuration::from_micros(100)));
        let curve = sweep(&dev, IoKind::Read, &[1, 2, 4], 4, MIB, 200);
        let knee = knee_latency(&curve);
        // depth-1 latency: 100 µs + 1 MiB / 200 MB/s ≈ 5.3 ms
        assert_eq!(knee, curve[0].latency);
    }

    #[test]
    fn knee_latency_empty_curve_fallback() {
        assert_eq!(knee_latency(&[]), SimDuration::from_millis(10));
    }

    #[test]
    fn profiling_does_not_mutate_input_device() {
        let dev = quiet_hdd();
        let before = dev.stats().completed;
        let _ = profile_device(&dev, 4, MIB);
        assert_eq!(dev.stats().completed, before);
    }
}
