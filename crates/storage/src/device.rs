//! The device abstraction shared by all storage models.

use crate::hdd::Hdd;
use crate::request::{DeviceRequest, Started};
use crate::ssd::Ssd;
use ibis_simcore::units::transfer_time;
use ibis_simcore::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Which family of model a device is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Positional rotating disk ([`crate::Hdd`]).
    Hdd,
    /// Flash device ([`crate::Ssd`]).
    Ssd,
    /// Idealised constant-rate device ([`Ideal`]), used in unit tests and
    /// as a "storage is never the bottleneck" control.
    Ideal,
}

/// Running totals every device keeps; the cluster reports and Table 2
/// accounting read these.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceStats {
    /// Bytes read from the medium (including cache-absorbed reads).
    pub bytes_read: u64,
    /// Bytes written to the medium or its cache.
    pub bytes_written: u64,
    /// Number of completed requests.
    pub completed: u64,
    /// Accumulated busy time (some service in progress).
    pub busy: SimDuration,
}

/// A passive storage device: the engine calls [`Device::submit`] when the
/// IBIS scheduler dispatches a request and [`Device::on_complete`] when a
/// previously returned [`Started`] event fires. Any call may start queued
/// requests, reported through `out`.
pub trait Device {
    /// Accepts a dispatched request. Newly started services (possibly this
    /// request, possibly none) are appended to `out`.
    fn submit(&mut self, req: DeviceRequest, now: SimTime, out: &mut Vec<Started>);

    /// Acknowledges that request `id` finished at `now`; may start queued
    /// requests, appended to `out`.
    fn on_complete(&mut self, id: u64, now: SimTime, out: &mut Vec<Started>);

    /// Requests currently being serviced by the medium.
    fn in_service(&self) -> usize;

    /// Requests accepted but waiting inside the device.
    fn queued(&self) -> usize;

    /// Total requests inside the device.
    fn outstanding(&self) -> usize {
        self.in_service() + self.queued()
    }

    /// The model family.
    fn kind(&self) -> DeviceKind;

    /// Running totals.
    fn stats(&self) -> DeviceStats;

    /// A conservative lower bound on the service time of **any** request
    /// this device can ever start: every [`Started::complete_at`] the
    /// model emits at instant `t` satisfies `complete_at >= t + floor`.
    ///
    /// This is the per-device lookahead the partitioned cluster engine
    /// derives its execution windows from (DESIGN.md §14), so it must be
    /// sound, not tight: a model with no hard latency floor (the HDD,
    /// whose write-back cache absorbs arbitrarily small writes at memory
    /// speed) must return [`SimDuration::ZERO`], which disables windowing
    /// on that device rather than corrupting the event order.
    fn service_floor(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// An idealised device: unlimited internal concurrency, fixed per-request
/// latency plus size over a constant bandwidth, no positional effects.
/// Useful for scheduler unit tests and for experiments that want storage
/// taken out of the picture.
#[derive(Debug, Clone)]
pub struct Ideal {
    /// Bandwidth in bytes/sec applied per request (no sharing).
    pub bandwidth: f64,
    /// Fixed per-request latency.
    pub latency: SimDuration,
    in_service: usize,
    stats: DeviceStats,
    busy_since: Option<SimTime>,
}

impl Ideal {
    /// Creates an ideal device with the given per-request bandwidth and
    /// fixed latency.
    pub fn new(bandwidth: f64, latency: SimDuration) -> Self {
        Ideal {
            bandwidth,
            latency,
            in_service: 0,
            stats: DeviceStats::default(),
            busy_since: None,
        }
    }
}

impl Device for Ideal {
    fn submit(&mut self, req: DeviceRequest, now: SimTime, out: &mut Vec<Started>) {
        if self.in_service == 0 {
            self.busy_since = Some(now);
        }
        self.in_service += 1;
        match req.kind {
            crate::IoKind::Read => self.stats.bytes_read += req.bytes,
            crate::IoKind::Write => self.stats.bytes_written += req.bytes,
        }
        let service = self.latency + transfer_time(req.bytes, self.bandwidth);
        out.push(Started {
            id: req.id,
            complete_at: now + service,
        });
    }

    fn on_complete(&mut self, _id: u64, now: SimTime, _out: &mut Vec<Started>) {
        debug_assert!(self.in_service > 0, "completion without service");
        self.in_service -= 1;
        self.stats.completed += 1;
        if self.in_service == 0 {
            if let Some(since) = self.busy_since.take() {
                self.stats.busy += now - since;
            }
        }
    }

    fn in_service(&self) -> usize {
        self.in_service
    }

    fn queued(&self) -> usize {
        0
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Ideal
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    fn service_floor(&self) -> SimDuration {
        // Every service is `latency + transfer`, and transfer is ≥ 0.
        self.latency
    }
}

/// Enum wrapper so a node can own any device model without boxing.
#[derive(Debug, Clone)]
pub enum DeviceModel {
    /// Rotating disk.
    Hdd(Hdd),
    /// Flash device.
    Ssd(Ssd),
    /// Idealised device.
    Ideal(Ideal),
}

impl Device for DeviceModel {
    fn submit(&mut self, req: DeviceRequest, now: SimTime, out: &mut Vec<Started>) {
        match self {
            DeviceModel::Hdd(d) => d.submit(req, now, out),
            DeviceModel::Ssd(d) => d.submit(req, now, out),
            DeviceModel::Ideal(d) => d.submit(req, now, out),
        }
    }

    fn on_complete(&mut self, id: u64, now: SimTime, out: &mut Vec<Started>) {
        match self {
            DeviceModel::Hdd(d) => d.on_complete(id, now, out),
            DeviceModel::Ssd(d) => d.on_complete(id, now, out),
            DeviceModel::Ideal(d) => d.on_complete(id, now, out),
        }
    }

    fn in_service(&self) -> usize {
        match self {
            DeviceModel::Hdd(d) => d.in_service(),
            DeviceModel::Ssd(d) => d.in_service(),
            DeviceModel::Ideal(d) => d.in_service(),
        }
    }

    fn queued(&self) -> usize {
        match self {
            DeviceModel::Hdd(d) => d.queued(),
            DeviceModel::Ssd(d) => d.queued(),
            DeviceModel::Ideal(d) => d.queued(),
        }
    }

    fn kind(&self) -> DeviceKind {
        match self {
            DeviceModel::Hdd(d) => d.kind(),
            DeviceModel::Ssd(d) => d.kind(),
            DeviceModel::Ideal(d) => d.kind(),
        }
    }

    fn stats(&self) -> DeviceStats {
        match self {
            DeviceModel::Hdd(d) => d.stats(),
            DeviceModel::Ssd(d) => d.stats(),
            DeviceModel::Ideal(d) => d.stats(),
        }
    }

    fn service_floor(&self) -> SimDuration {
        match self {
            DeviceModel::Hdd(d) => d.service_floor(),
            DeviceModel::Ssd(d) => d.service_floor(),
            DeviceModel::Ideal(d) => d.service_floor(),
        }
    }
}

/// Internal FIFO of accepted-but-waiting requests, shared by the HDD and
/// SSD models.
#[derive(Debug, Clone, Default)]
pub(crate) struct InternalQueue {
    queue: VecDeque<DeviceRequest>,
}

impl InternalQueue {
    pub(crate) fn push(&mut self, req: DeviceRequest) {
        self.queue.push_back(req);
    }

    pub(crate) fn pop_front(&mut self) -> Option<DeviceRequest> {
        self.queue.pop_front()
    }

    /// Pops the earliest request whose stream matches, if any (HDD
    /// anticipatory batching).
    pub(crate) fn pop_stream(&mut self, stream: u64) -> Option<DeviceRequest> {
        let pos = self.queue.iter().position(|r| r.stream == stream)?;
        self.queue.remove(pos)
    }

    pub(crate) fn len(&self) -> usize {
        self.queue.len()
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoKind;
    use ibis_simcore::units::MIB;

    fn req(id: u64, kind: IoKind, bytes: u64) -> DeviceRequest {
        DeviceRequest {
            id,
            kind,
            stream: 1,
            bytes,
        }
    }

    #[test]
    fn ideal_service_time_is_latency_plus_transfer() {
        let mut d = Ideal::new(100e6, SimDuration::from_millis(1));
        let mut out = Vec::new();
        d.submit(req(1, IoKind::Read, 100_000_000), SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].complete_at,
            SimTime::from_millis(1) + SimDuration::from_secs(1)
        );
    }

    #[test]
    fn ideal_unlimited_concurrency() {
        let mut d = Ideal::new(100e6, SimDuration::ZERO);
        let mut out = Vec::new();
        for i in 0..10 {
            d.submit(req(i, IoKind::Write, MIB), SimTime::ZERO, &mut out);
        }
        assert_eq!(d.in_service(), 10);
        assert_eq!(d.queued(), 0);
        // all complete at the same instant: no queueing
        let t0 = out[0].complete_at;
        assert!(out.iter().all(|s| s.complete_at == t0));
    }

    #[test]
    fn ideal_stats_track_bytes_and_busy() {
        let mut d = Ideal::new(1e6, SimDuration::ZERO);
        let mut out = Vec::new();
        d.submit(req(1, IoKind::Read, 1_000_000), SimTime::ZERO, &mut out);
        let done = out[0].complete_at;
        d.on_complete(1, done, &mut out);
        let s = d.stats();
        assert_eq!(s.bytes_read, 1_000_000);
        assert_eq!(s.bytes_written, 0);
        assert_eq!(s.completed, 1);
        assert_eq!(s.busy, SimDuration::from_secs(1));
    }

    #[test]
    fn service_floor_bounds_every_service() {
        let lat = SimDuration::from_micros(250);
        let mut d = Ideal::new(100e6, lat);
        assert_eq!(d.service_floor(), lat);
        let mut out = Vec::new();
        let now = SimTime::from_secs(1);
        d.submit(req(1, IoKind::Read, 1), now, &mut out);
        d.submit(req(2, IoKind::Write, 0), now, &mut out);
        for s in &out {
            assert!(s.complete_at >= now + d.service_floor());
        }
        // The enum wrapper forwards the model's floor.
        let m = DeviceModel::Ideal(Ideal::new(1e6, lat));
        assert_eq!(m.service_floor(), lat);
        let h = DeviceModel::Hdd(crate::Hdd::new(crate::HddConfig::default()));
        assert_eq!(h.service_floor(), SimDuration::ZERO);
    }

    #[test]
    fn internal_queue_stream_pop() {
        let mut q = InternalQueue::default();
        q.push(DeviceRequest { id: 1, kind: IoKind::Read, stream: 7, bytes: 1 });
        q.push(DeviceRequest { id: 2, kind: IoKind::Read, stream: 9, bytes: 1 });
        q.push(DeviceRequest { id: 3, kind: IoKind::Read, stream: 9, bytes: 1 });
        assert_eq!(q.pop_stream(9).unwrap().id, 2);
        assert_eq!(q.pop_stream(42), None);
        assert_eq!(q.pop_front().unwrap().id, 1);
        assert_eq!(q.pop_front().unwrap().id, 3);
        assert!(q.is_empty());
    }
}
