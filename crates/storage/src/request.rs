//! Device-level request types.

use ibis_simcore::SimTime;

/// Direction of a device I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// A read from the device.
    Read,
    /// A write to the device.
    Write,
}

impl IoKind {
    /// True for [`IoKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, IoKind::Read)
    }
}

/// One request as seen by a device, i.e. *after* the IBIS scheduler has
/// dispatched it. `stream` identifies a logically sequential byte stream
/// (one task's reads of one block, one spill file, …); the HDD model uses
/// consecutive same-stream requests to decide whether a seek is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceRequest {
    /// Caller-assigned unique id; echoed back in [`Started`].
    pub id: u64,
    /// Read or write.
    pub kind: IoKind,
    /// Sequential-stream key for positional cost modelling.
    pub stream: u64,
    /// Request size in bytes.
    pub bytes: u64,
}

/// Notification that a request has entered service and will complete at
/// `complete_at`. The engine schedules a completion event at that instant
/// and must then call [`crate::Device::on_complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Started {
    /// The request that entered service.
    pub id: u64,
    /// Absolute completion instant.
    pub complete_at: SimTime,
}
